// An Ext2-like simulated file system.
//
// Implements the exact code paths the paper's case studies profile:
//
//  * readdir: past-EOF fast path (Figure 7 first peak), page-cache hits
//    (second peak), and readpage + wait-for-page on misses (third/fourth
//    peaks, depending on the disk cache);
//  * readpage: asynchronous submission only, so its own profile stays
//    cheap while callers absorb the I/O wait (§6.2);
//  * generic_file_llseek semantics: configurable to take the shared inode
//    semaphore i_sem (the contention of §6.1) or the patched f_pos-only
//    update;
//  * O_DIRECT reads/writes that hold i_sem across the disk transfer, which
//    is what the llseek of a concurrent process collides with;
//  * buffered writes that return after dirtying the page cache (their disk
//    I/O is visible only at the driver layer).
//
// File-system images are built at "mkfs time" with AddDir/AddFile (no
// simulated cost), using a mostly-contiguous block allocator with a
// fragmentation knob, so grep-style scans produce the sequential/seek I/O
// mix of a real kernel source tree.

#ifndef OSPROF_SRC_FS_EXT2FS_H_
#define OSPROF_SRC_FS_EXT2FS_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/fs/page_cache.h"
#include "src/fs/vfs.h"
#include "src/profilers/callgraph_profiler.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/sim/race_tracker.h"
#include "src/sim/rng.h"
#include "src/sim/sync.h"

namespace osfs {

using osprofilers::SimProfiler;

// Per-operation CPU costs in cycles, tuned so that the resulting profile
// peaks land in the paper's buckets at 1.7 GHz.
struct Ext2Costs {
  osim::Cycles lookup_per_component = 350;
  osim::Cycles open_base = 450;
  osim::Cycles close_base = 150;
  osim::Cycles readdir_eof = 90;       // Bucket 6 (Figure 7, first peak).
  osim::Cycles readdir_base = 500;
  osim::Cycles readdir_per_entry = 55;
  osim::Cycles readpage_base = 900;    // Submission only.
  osim::Cycles read_base = 350;
  osim::Cycles read_copy_per_page = 1400;
  osim::Cycles write_base = 400;
  osim::Cycles write_per_page = 1600;
  osim::Cycles llseek_body = 150;      // generic_file_llseek minus sem ops.
  osim::Cycles sem_op = 125;           // One down()/up() pair costs 2x this.
  osim::Cycles llseek_patched = 120;   // The §6.1 fix: 400 -> 120 cycles.
  osim::Cycles fsync_base = 500;
  osim::Cycles create_base = 2500;
  osim::Cycles unlink_base = 2000;
  osim::Cycles stat_base = 300;
};

struct Ext2Config {
  Ext2Costs costs;
  // Entries returned per readdir (getdents) call: the user buffer is
  // smaller than a directory page, so one page yields several calls --
  // the first cold, the rest page-cache hits (Figure 7's second peak).
  std::uint64_t entries_per_readdir = 16;
  // generic_file_llseek takes i_sem (the unpatched Linux 2.6.11 behaviour
  // of §6.1); false applies the paper's fix.
  bool llseek_takes_i_sem = true;
  // Page-cache capacity.
  std::uint64_t cache_pages = 200'000;
  // mkfs-time allocator: probability that a new file's extent jumps to a
  // random disk area instead of continuing after the previous one.
  double fragmentation = 0.03;
  // Blocks reserved per created (initially empty) file.
  std::uint64_t create_reserve_blocks = 64;
  // Multiplicative log-normal noise applied to CPU costs (sigma in log
  // space); gives profiles their natural width.
  double cpu_noise_sigma = 0.25;
};

inline constexpr std::uint64_t kDirentBytes = 64;

class Ext2SimFs : public Vfs {
 public:
  Ext2SimFs(osim::Kernel* kernel, osim::SimDisk* disk, Ext2Config config = {});

  // --- mkfs-time image construction (no simulated cost) -----------------
  // Paths are absolute, '/'-separated; parents must exist.
  int AddDir(const std::string& path);
  int AddFile(const std::string& path, std::uint64_t size_bytes);

  // --- VFS operations ----------------------------------------------------
  Task<int> Open(const std::string& path, bool direct_io) override;
  Task<void> Close(int fd) override;
  Task<std::int64_t> Read(int fd, std::uint64_t bytes) override;
  Task<std::int64_t> Write(int fd, std::uint64_t bytes) override;
  Task<std::uint64_t> Llseek(int fd, std::uint64_t pos) override;
  Task<DirentBatch> Readdir(int fd) override;
  Task<void> Fsync(int fd) override;
  Task<int> Create(const std::string& path) override;
  Task<void> Unlink(const std::string& path) override;
  Task<FileAttr> Stat(const std::string& path) override;

  // --- Memory mapping (local file systems only) --------------------------
  // Maps the open file; returns a mapping id.  Profiled as "mmap".
  Task<int> Mmap(int fd);
  // Simulates a load/store at `offset` within the mapping.  Accesses with
  // the PTE already present cost almost nothing and never enter the
  // kernel; otherwise the fault handler runs -- profiled as "nopage"
  // (the 2.6-era filemap_nopage): a minor fault maps a page already in
  // the page cache, a major fault goes to disk first.
  Task<void> MemAccess(int mapping, std::uint64_t offset);

  std::uint64_t minor_faults() const { return minor_faults_; }
  std::uint64_t major_faults() const { return major_faults_; }

  // Attaches FoSgen-style in-fs instrumentation: every operation
  // (including the internal readpage) records into `profiler`.  All probe
  // names are resolved here, once, so the per-operation path dispatches on
  // pre-resolved handles.
  void SetProfiler(SimProfiler* profiler) {
    profiler_ = profiler;
    ResolveProbes();
  }

  // Alternative instrumentation: function-granularity call-graph
  // profiling (§3.1's gcc -p analogue).  Takes precedence over the plain
  // profiler when both are set.
  void SetCallGraphProfiler(osprofilers::CallGraphProfiler* profiler) {
    callgraph_ = profiler;
    ResolveProbes();
  }

  PageCache& page_cache() { return cache_; }
  const Ext2Config& config() const { return config_; }
  osim::Kernel* kernel() const { return kernel_; }

  // Introspection for tests and experiments.
  bool Exists(const std::string& path) const;
  std::uint64_t FileSize(const std::string& path) const;
  int open_files() const;

 protected:
  struct Inode {
    int id = 0;
    bool is_dir = false;
    std::uint64_t size = 0;  // Bytes; directories derive it from entries.
    std::uint64_t first_block = 0;
    std::uint64_t capacity_blocks = 0;
    std::map<std::string, int> entries;        // Dirs: name -> inode.
    std::vector<std::string> entry_order;      // Dirs: readdir order.
    std::unique_ptr<osim::SimSemaphore> i_sem;
    bool unlinked = false;
  };

  struct OpenFile {
    int inode = -1;
    std::uint64_t pos = 0;
    bool direct_io = false;
    bool in_use = false;
  };

  // Hook for subclasses (JournalFs wraps reads in the super lock).
  virtual Task<std::int64_t> ReadImpl(int fd, std::uint64_t bytes);

  Task<std::int64_t> BufferedRead(OpenFile& file, Inode& inode,
                                  std::uint64_t bytes);
  Task<std::int64_t> DirectRead(OpenFile& file, Inode& inode,
                                std::uint64_t bytes);
  // The profiled internal readpage operation: submits the backing I/O.
  Task<void> ReadPage(int inode_id, std::uint64_t page_index);
  Task<void> ReadPageImpl(int inode_id, std::uint64_t page_index);

  Task<std::int64_t> WriteImpl(int fd, std::uint64_t bytes);
  Task<std::uint64_t> LlseekImpl(int fd, std::uint64_t pos);
  Task<DirentBatch> ReaddirImpl(int fd, std::uint64_t* past_eof_out);
  Task<void> FsyncImpl(int fd);
  Task<int> OpenImpl(const std::string& path, bool direct_io);
  Task<void> CloseImpl(int fd);
  Task<int> MmapImpl(int fd);
  Task<void> NopageImpl(int mapping, std::uint64_t page);
  Task<int> CreateImpl(const std::string& path);
  Task<void> UnlinkImpl(const std::string& path);
  Task<FileAttr> StatImpl(const std::string& path);

  // One operation's pre-resolved probes: a handle per attachable
  // profiler (the two have independent op tables).
  struct OpProbe {
    osprof::ProbeHandle fs;  // Into profiler_'s table.
    osprof::ProbeHandle cg;  // Into callgraph_'s table.
  };

  // Every probe this file system (or a subclass) can fire, resolved by
  // ResolveProbes() when instrumentation attaches.
  struct OpProbes {
    OpProbe open, close, read, readpage, write, fsync, llseek, readdir,
        mmap, nopage, create, unlink, stat, write_super;
  };

  // (Re-)resolves probes_ against whichever profilers are attached.
  void ResolveProbes();

  // Wraps `inner` with whichever profiler is attached.
  template <typename T>
  Task<T> Profiled(OpProbe op, Task<T> inner) {
    if (callgraph_ != nullptr) {
      co_return co_await callgraph_->Wrap(op.cg, std::move(inner));
    }
    if (profiler_ == nullptr) {
      co_return co_await std::move(inner);
    }
    co_return co_await profiler_->Wrap(op.fs, std::move(inner));
  }

  // CPU burst with multiplicative log-normal noise.
  Task<void> CpuNoisy(osim::Cycles cycles);

  int ResolvePath(const std::string& path) const;  // -1 if absent.
  std::pair<int, std::string> ResolveParent(const std::string& path) const;
  std::uint64_t DirSizeBytes(const Inode& inode) const {
    return inode.entry_order.size() * kDirentBytes;
  }
  std::uint64_t AllocateBlocks(std::uint64_t blocks);
  Inode& inode(int id) {
    return *OSIM_SHARED_RO(inodes_)[static_cast<std::size_t>(id)];
  }
  OpenFile& file(int fd);
  int AllocFd(int inode_id, bool direct_io);
  int NewInode(bool is_dir);

  struct MmapRegion {
    int inode = -1;
    std::set<std::uint64_t> present;  // Pages with a PTE installed.
    bool in_use = false;
  };

  osim::Kernel* kernel_;
  osim::SimDisk* disk_;
  Ext2Config config_;
  PageCache cache_;
  std::deque<MmapRegion> mappings_;
  std::uint64_t minor_faults_ = 0;
  std::uint64_t major_faults_ = 0;
  SimProfiler* profiler_ = nullptr;
  osprofilers::CallGraphProfiler* callgraph_ = nullptr;
  OpProbes probes_;
  // The inode table's protocol spans awaits (path resolution re-reads it
  // after I/O waits; create/unlink grow it), so it is a race-checked cell.
  osim::Shared<std::vector<std::unique_ptr<Inode>>> inodes_;
  // Deque: open/close during coroutine suspension must not invalidate
  // OpenFile references held across awaits.  The fd allocator itself is
  // single-turn-atomic (no await between probe and claim), so it is
  // deliberately not a Shared cell.
  std::deque<OpenFile> fds_;
  // Allocator cursor; create/write paths bump it across awaits.
  // Initialized to 64 to leave room for the "superblock" area.
  osim::Shared<std::uint64_t> next_alloc_;
  osim::Rng alloc_rng_;
};

}  // namespace osfs

#endif  // OSPROF_SRC_FS_EXT2FS_H_
