#include "src/fs/cluster_fs.h"

#include <algorithm>
#include <stdexcept>

namespace osfs {

namespace {

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string part;
  for (const char c : path) {
    if (c == '/') {
      if (!part.empty()) {
        parts.push_back(std::move(part));
        part.clear();
      }
    } else {
      part.push_back(c);
    }
  }
  if (!part.empty()) {
    parts.push_back(std::move(part));
  }
  return parts;
}

constexpr std::uint64_t kReaddirBatch = 32;
constexpr std::uint64_t kClusterDirentBytes = 64;

std::uint64_t PagesOf(std::uint64_t bytes) {
  return (bytes + kPageBytes - 1) / kPageBytes;
}

}  // namespace

// --- ClusterVolume ----------------------------------------------------------

ClusterVolume::ClusterVolume(osim::Kernel* kernel, osim::SimDisk* disk)
    : kernel_(kernel), disk_(disk) {
  NewInode(true);  // Root directory, inode 0.
}

int ClusterVolume::NewInode(bool is_dir) {
  const int id = static_cast<int>(inodes_.size());
  inodes_.emplace_back(*kernel_, "cluster.inode");
  OSIM_SHARED_RW(inodes_.back()).is_dir = is_dir;
  return id;
}

std::uint64_t ClusterVolume::AllocateBlocks(std::uint64_t blocks) {
  const std::uint64_t start = next_alloc_;
  next_alloc_ += blocks;
  return start;
}

int ClusterVolume::ResolvePath(const std::string& path) const {
  int cur = 0;
  for (const std::string& part : SplitPath(path)) {
    const ClusterInodeMeta& meta =
        OSIM_SHARED_RO(inodes_[static_cast<std::size_t>(cur)]);
    const auto it = meta.entries.find(part);
    if (it == meta.entries.end()) {
      return -1;
    }
    cur = it->second;
  }
  return cur;
}

int ClusterVolume::AddDir(const std::string& path) {
  const std::vector<std::string> parts = SplitPath(path);
  if (parts.empty()) {
    return 0;
  }
  std::string parent_path;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    parent_path += "/" + parts[i];
  }
  const int parent = ResolvePath(parent_path);
  if (parent < 0) {
    throw std::invalid_argument("AddDir: no parent for " + path);
  }
  const int id = NewInode(true);
  ClusterInodeMeta& pm = OSIM_SHARED_RW(meta(parent));
  pm.entries[parts.back()] = id;
  pm.entry_order.push_back(parts.back());
  return id;
}

int ClusterVolume::AddFile(const std::string& path,
                           std::uint64_t size_bytes) {
  const std::vector<std::string> parts = SplitPath(path);
  if (parts.empty()) {
    throw std::invalid_argument("AddFile: empty path");
  }
  std::string parent_path;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    parent_path += "/" + parts[i];
  }
  const int parent = ResolvePath(parent_path);
  if (parent < 0) {
    throw std::invalid_argument("AddFile: no parent for " + path);
  }
  const int id = NewInode(false);
  {
    ClusterInodeMeta& m = OSIM_SHARED_RW(meta(id));
    m.size = size_bytes;
    m.capacity_blocks =
        std::max(kBlocksPerPage, PagesOf(size_bytes) * kBlocksPerPage);
    m.first_block = AllocateBlocks(m.capacity_blocks);
  }
  ClusterInodeMeta& pm = OSIM_SHARED_RW(meta(parent));
  pm.entries[parts.back()] = id;
  pm.entry_order.push_back(parts.back());
  return id;
}

// --- ClusterFsNode ----------------------------------------------------------

ClusterFsNode::ClusterFsNode(ClusterVolume* volume, osnet::Dlm* dlm,
                             int node, ClusterFsConfig config)
    : kernel_(volume->kernel()),
      volume_(volume),
      dlm_(dlm),
      node_(node),
      config_(config),
      cache_(volume->kernel(), volume->disk(), config.cache_pages) {
  dlm_->SetDowngradeHook(
      node, [this](const std::string& resource) -> Task<void> {
        return FlushResource(resource);
      });
}

void ClusterFsNode::ResolveProbes() {
  const struct {
    osprof::ProbeHandle* probe;
    const char* name;
  } kProbes[] = {
      {&probes_.open, "open"},         {&probes_.close, "close"},
      {&probes_.read, "read"},         {&probes_.readpage, "readpage"},
      {&probes_.write, "write"},       {&probes_.llseek, "llseek"},
      {&probes_.readdir, "readdir"},   {&probes_.fsync, "fsync"},
      {&probes_.create, "create"},     {&probes_.unlink, "unlink"},
      {&probes_.stat, "stat"},
  };
  for (const auto& entry : kProbes) {
    if (profiler_ != nullptr) {
      *entry.probe = profiler_->Resolve(entry.name);
    }
  }
}

Task<void> ClusterFsNode::CpuNoisy(osim::Cycles cycles) {
  double factor = 1.0;
  if (config_.cpu_noise_sigma > 0.0) {
    factor = kernel_->rng().LogNormal(1.0, config_.cpu_noise_sigma);
  }
  const auto noisy = static_cast<osim::Cycles>(
      std::max(1.0, static_cast<double>(cycles) * factor));
  co_await kernel_->Cpu(noisy);
}

ClusterFsNode::OpenFile& ClusterFsNode::file(int fd) {
  if (fd < 0 || fd >= static_cast<int>(fds_.size()) ||
      !fds_[static_cast<std::size_t>(fd)].in_use) {
    throw std::invalid_argument("ClusterFsNode: bad file descriptor");
  }
  return fds_[static_cast<std::size_t>(fd)];
}

int ClusterFsNode::AllocFd(int inode) {
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    if (!fds_[i].in_use) {
      fds_[i] = OpenFile{inode, 0, true};
      return static_cast<int>(i);
    }
  }
  fds_.push_back(OpenFile{inode, 0, true});
  return static_cast<int>(fds_.size() - 1);
}

ClusterFsNode::LocalInode& ClusterFsNode::local(int inode) {
  while (static_cast<int>(locals_.size()) <= inode) {
    LocalInode li;
    li.i_sem = std::make_unique<osim::SimSemaphore>(
        kernel_, 1,
        "ci_sem:n" + std::to_string(node_) + ":" +
            std::to_string(locals_.size()));
    locals_.push_back(std::move(li));
  }
  return locals_[static_cast<std::size_t>(inode)];
}

void ClusterFsNode::Revalidate(int inode, LocalInode& li,
                               const ClusterInodeMeta& meta) {
  if (li.cached_generation != meta.generation) {
    cache_.DropCleanForInode(inode);
    li.cached_generation = meta.generation;
    ++invalidations_;
  }
}

Task<int> ClusterFsNode::ResolveLocked(const std::string& path) {
  const std::vector<std::string> parts = SplitPath(path);
  int cur = 0;
  for (const std::string& part : parts) {
    const std::string res = InodeResource(cur);
    co_await dlm_->Acquire(res, osnet::DlmMode::kProtectedRead);
    LocalInode& li = local(cur);
    co_await li.i_sem->Acquire();
    int next = -1;
    {
      const ClusterInodeMeta& meta = OSIM_SHARED_RO(volume_->meta(cur));
      const auto it = meta.entries.find(part);
      if (it != meta.entries.end()) {
        next = it->second;
      }
    }
    li.i_sem->Release();
    dlm_->Release(res, osnet::DlmMode::kProtectedRead);
    if (next < 0) {
      co_return -1;
    }
    cur = next;
  }
  co_return cur;
}

Task<std::pair<int, std::string>> ClusterFsNode::ResolveParentLocked(
    const std::string& path) {
  const std::vector<std::string> parts = SplitPath(path);
  if (parts.empty()) {
    co_return std::pair<int, std::string>{-1, ""};
  }
  std::string parent_path;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    parent_path += "/" + parts[i];
  }
  const int parent = co_await ResolveLocked(parent_path);
  co_return std::pair<int, std::string>{parent, parts.back()};
}

// --- Open / Close -----------------------------------------------------------

Task<int> ClusterFsNode::Open(const std::string& path, bool direct_io) {
  return Profiled(probes_.open, OpenImpl(path, direct_io));
}

Task<int> ClusterFsNode::OpenImpl(const std::string& path, bool /*direct_io*/) {
  const std::size_t components = SplitPath(path).size();
  co_await CpuNoisy(config_.costs.open_base +
                    config_.costs.lookup_per_component * components);
  const int id = co_await ResolveLocked(path);
  if (id < 0) {
    co_return -1;
  }
  co_return AllocFd(id);
}

Task<void> ClusterFsNode::Close(int fd) {
  return Profiled(probes_.close, CloseImpl(fd));
}

Task<void> ClusterFsNode::CloseImpl(int fd) {
  co_await CpuNoisy(config_.costs.close_base);
  file(fd).in_use = false;
}

// --- Read -------------------------------------------------------------------

Task<std::int64_t> ClusterFsNode::Read(int fd, std::uint64_t bytes) {
  return Profiled(probes_.read, ReadImpl(fd, bytes));
}

Task<std::int64_t> ClusterFsNode::ReadImpl(int fd, std::uint64_t bytes) {
  OpenFile& f = file(fd);
  co_await CpuNoisy(config_.costs.read_base);
  const std::string res = InodeResource(f.inode);
  co_await dlm_->Acquire(res, osnet::DlmMode::kProtectedRead);
  LocalInode& li = local(f.inode);
  co_await li.i_sem->Acquire();
  std::uint64_t size = 0;
  std::uint64_t first_block = 0;
  {
    const ClusterInodeMeta& meta = OSIM_SHARED_RO(volume_->meta(f.inode));
    Revalidate(f.inode, li, meta);
    size = meta.size;
    first_block = meta.first_block;
  }
  if (f.pos >= size) {
    li.i_sem->Release();
    dlm_->Release(res, osnet::DlmMode::kProtectedRead);
    co_return 0;
  }
  const std::uint64_t n = std::min(bytes, size - f.pos);
  const std::uint64_t first_page = f.pos / kPageBytes;
  const std::uint64_t last_page = (f.pos + n - 1) / kPageBytes;
  for (std::uint64_t page = first_page; page <= last_page; ++page) {
    const PageKey key{f.inode, page};
    if (!cache_.Contains(key)) {
      co_await ReadPage(f.inode, page, first_block);
      co_await cache_.WaitForPage(key);
    }
    co_await CpuNoisy(config_.costs.read_copy_per_page);
  }
  f.pos += n;
  li.i_sem->Release();
  dlm_->Release(res, osnet::DlmMode::kProtectedRead);
  co_return static_cast<std::int64_t>(n);
}

Task<void> ClusterFsNode::ReadPage(int inode, std::uint64_t page,
                                   std::uint64_t first_block) {
  return Profiled(probes_.readpage, ReadPageImpl(inode, page, first_block));
}

Task<void> ClusterFsNode::ReadPageImpl(int inode, std::uint64_t page,
                                       std::uint64_t first_block) {
  co_await CpuNoisy(config_.costs.readpage_base);
  cache_.StartRead(PageKey{inode, page}, first_block + page * kBlocksPerPage);
}

// --- Write ------------------------------------------------------------------

Task<std::int64_t> ClusterFsNode::Write(int fd, std::uint64_t bytes) {
  return Profiled(probes_.write, WriteImpl(fd, bytes));
}

Task<std::int64_t> ClusterFsNode::WriteImpl(int fd, std::uint64_t bytes) {
  OpenFile& f = file(fd);
  co_await CpuNoisy(config_.costs.write_base);
  const std::string res = InodeResource(f.inode);
  co_await dlm_->Acquire(res, osnet::DlmMode::kExclusive);
  LocalInode& li = local(f.inode);
  co_await li.i_sem->Acquire();
  const std::uint64_t end = f.pos + bytes;
  std::uint64_t first_block = 0;
  {
    ClusterInodeMeta& meta = OSIM_SHARED_RW(volume_->meta(f.inode));
    Revalidate(f.inode, li, meta);
    const std::uint64_t needed = PagesOf(end) * kBlocksPerPage;
    if (needed > meta.capacity_blocks) {
      // Relocate to a fresh, larger extent (bump allocator: growth
      // abandons the old run, like the seed fs's whole-extent realloc).
      meta.capacity_blocks = std::max(needed, meta.capacity_blocks * 2);
      meta.first_block = volume_->AllocateBlocks(meta.capacity_blocks);
    }
    if (end > meta.size) {
      meta.size = end;
    }
    // Publish the write cluster-wide: peers drop their clean copies on
    // their next grant.
    ++meta.generation;
    li.cached_generation = meta.generation;
    first_block = meta.first_block;
  }
  const std::uint64_t first_page = f.pos / kPageBytes;
  const std::uint64_t last_page = (end - 1) / kPageBytes;
  for (std::uint64_t page = first_page; page <= last_page; ++page) {
    cache_.MarkDirty(PageKey{f.inode, page},
                     first_block + page * kBlocksPerPage);
    co_await CpuNoisy(config_.costs.write_per_page);
  }
  f.pos = end;
  li.i_sem->Release();
  dlm_->Release(res, osnet::DlmMode::kExclusive);
  co_return static_cast<std::int64_t>(bytes);
}

// --- Llseek / Readdir / Fsync ----------------------------------------------

Task<std::uint64_t> ClusterFsNode::Llseek(int fd, std::uint64_t pos) {
  return Profiled(probes_.llseek, LlseekImpl(fd, pos));
}

Task<std::uint64_t> ClusterFsNode::LlseekImpl(int fd, std::uint64_t pos) {
  OpenFile& f = file(fd);
  co_await CpuNoisy(config_.costs.llseek_base);
  // generic_file_llseek discipline: the position update holds i_sem.
  LocalInode& li = local(f.inode);
  co_await li.i_sem->Acquire();
  f.pos = pos;
  li.i_sem->Release();
  co_return pos;
}

Task<DirentBatch> ClusterFsNode::Readdir(int fd) {
  return Profiled(probes_.readdir, ReaddirImpl(fd));
}

Task<DirentBatch> ClusterFsNode::ReaddirImpl(int fd) {
  OpenFile& f = file(fd);
  co_await CpuNoisy(config_.costs.readdir_base);
  const std::string res = InodeResource(f.inode);
  co_await dlm_->Acquire(res, osnet::DlmMode::kProtectedRead);
  LocalInode& li = local(f.inode);
  co_await li.i_sem->Acquire();
  DirentBatch batch;
  {
    const ClusterInodeMeta& meta = OSIM_SHARED_RO(volume_->meta(f.inode));
    const std::uint64_t total = meta.entry_order.size();
    if (f.pos >= total) {
      batch.at_end = true;
    } else {
      const std::uint64_t end = std::min(total, f.pos + kReaddirBatch);
      for (std::uint64_t i = f.pos; i < end; ++i) {
        batch.names.push_back(meta.entry_order[i]);
      }
      f.pos = end;
    }
  }
  li.i_sem->Release();
  dlm_->Release(res, osnet::DlmMode::kProtectedRead);
  co_return batch;
}

Task<void> ClusterFsNode::Fsync(int fd) {
  return Profiled(probes_.fsync, FsyncImpl(fd));
}

Task<void> ClusterFsNode::FsyncImpl(int fd) {
  OpenFile& f = file(fd);
  co_await CpuNoisy(config_.costs.fsync_base);
  // PR, not EX: dirty pages imply this node already holds a cached EX
  // grant, so the acquire is a local hit; if there is nothing dirty the
  // flush loop is empty anyway.
  const std::string res = InodeResource(f.inode);
  co_await dlm_->Acquire(res, osnet::DlmMode::kProtectedRead);
  LocalInode& li = local(f.inode);
  co_await li.i_sem->Acquire();
  std::uint64_t pages = 0;
  {
    const ClusterInodeMeta& meta = OSIM_SHARED_RO(volume_->meta(f.inode));
    pages = PagesOf(meta.size);
  }
  for (std::uint64_t page = 0; page < pages; ++page) {
    const PageKey key{f.inode, page};
    if (cache_.IsDirty(key)) {
      co_await cache_.WriteBack(key);
      ++pages_flushed_;
    }
  }
  li.i_sem->Release();
  dlm_->Release(res, osnet::DlmMode::kProtectedRead);
}

// --- Create / Unlink / Stat -------------------------------------------------

Task<int> ClusterFsNode::Create(const std::string& path) {
  return Profiled(probes_.create, CreateImpl(path));
}

Task<int> ClusterFsNode::CreateImpl(const std::string& path) {
  const std::size_t components = SplitPath(path).size();
  co_await CpuNoisy(config_.costs.create_base +
                    config_.costs.lookup_per_component * components);
  const auto [parent, leaf] = co_await ResolveParentLocked(path);
  if (parent < 0 || leaf.empty()) {
    co_return -1;
  }
  const std::string res = InodeResource(parent);
  co_await dlm_->Acquire(res, osnet::DlmMode::kExclusive);
  LocalInode& li = local(parent);
  co_await li.i_sem->Acquire();
  int id = -1;
  {
    ClusterInodeMeta& pm = OSIM_SHARED_RW(volume_->meta(parent));
    const auto it = pm.entries.find(leaf);
    if (it != pm.entries.end()) {
      id = it->second;
    } else {
      id = volume_->NewInode(false);
      {
        ClusterInodeMeta& m = OSIM_SHARED_RW(volume_->meta(id));
        m.capacity_blocks = kBlocksPerPage;
        m.first_block = volume_->AllocateBlocks(m.capacity_blocks);
      }
      pm.entries[leaf] = id;
      pm.entry_order.push_back(leaf);
      ++pm.generation;
    }
  }
  li.i_sem->Release();
  dlm_->Release(res, osnet::DlmMode::kExclusive);
  co_return AllocFd(id);
}

Task<void> ClusterFsNode::Unlink(const std::string& path) {
  return Profiled(probes_.unlink, UnlinkImpl(path));
}

Task<void> ClusterFsNode::UnlinkImpl(const std::string& path) {
  const std::size_t components = SplitPath(path).size();
  co_await CpuNoisy(config_.costs.unlink_base +
                    config_.costs.lookup_per_component * components);
  const auto [parent, leaf] = co_await ResolveParentLocked(path);
  if (parent < 0 || leaf.empty()) {
    co_return;
  }
  const std::string res = InodeResource(parent);
  co_await dlm_->Acquire(res, osnet::DlmMode::kExclusive);
  LocalInode& li = local(parent);
  co_await li.i_sem->Acquire();
  {
    ClusterInodeMeta& pm = OSIM_SHARED_RW(volume_->meta(parent));
    const auto it = pm.entries.find(leaf);
    if (it != pm.entries.end()) {
      const int id = it->second;
      pm.entries.erase(it);
      pm.entry_order.erase(std::find(pm.entry_order.begin(),
                                     pm.entry_order.end(), leaf));
      ++pm.generation;
      OSIM_SHARED_RW(volume_->meta(id)).unlinked = true;
    }
  }
  li.i_sem->Release();
  dlm_->Release(res, osnet::DlmMode::kExclusive);
}

Task<FileAttr> ClusterFsNode::Stat(const std::string& path) {
  return Profiled(probes_.stat, StatImpl(path));
}

Task<FileAttr> ClusterFsNode::StatImpl(const std::string& path) {
  const std::size_t components = SplitPath(path).size();
  co_await CpuNoisy(config_.costs.stat_base +
                    config_.costs.lookup_per_component * components);
  const int id = co_await ResolveLocked(path);
  FileAttr attr;
  if (id < 0) {
    co_return attr;
  }
  const std::string res = InodeResource(id);
  co_await dlm_->Acquire(res, osnet::DlmMode::kProtectedRead);
  LocalInode& li = local(id);
  co_await li.i_sem->Acquire();
  {
    const ClusterInodeMeta& meta = OSIM_SHARED_RO(volume_->meta(id));
    attr.is_dir = meta.is_dir;
    attr.size = meta.is_dir
                    ? meta.entry_order.size() * kClusterDirentBytes
                    : meta.size;
  }
  li.i_sem->Release();
  dlm_->Release(res, osnet::DlmMode::kProtectedRead);
  co_return attr;
}

// --- The DLM downgrade hook -------------------------------------------------

Task<void> ClusterFsNode::FlushResource(const std::string& resource) {
  constexpr const char kPrefix[] = "inode:";
  if (resource.rfind(kPrefix, 0) != 0) {
    co_return;
  }
  const int inode = std::stoi(resource.substr(sizeof(kPrefix) - 1));
  // Runs in the node's DLM daemon; i_sem orders the flush against local
  // clients still finishing an operation under the cached grant.
  LocalInode& li = local(inode);
  co_await li.i_sem->Acquire();
  std::uint64_t pages = 0;
  {
    const ClusterInodeMeta& meta = OSIM_SHARED_RO(volume_->meta(inode));
    pages = PagesOf(meta.size);
  }
  for (std::uint64_t page = 0; page < pages; ++page) {
    const PageKey key{inode, page};
    if (cache_.IsDirty(key)) {
      co_await cache_.WriteBack(key);
      ++pages_flushed_;
    }
  }
  li.i_sem->Release();
}

}  // namespace osfs
