#include "src/fs/page_cache.h"

namespace osfs {

PageCache::PageCache(Kernel* kernel, SimDisk* disk,
                     std::uint64_t capacity_pages)
    : kernel_(kernel),
      disk_(disk),
      capacity_pages_(capacity_pages),
      pages_(*kernel, "page_cache.pages") {}

bool PageCache::Contains(const PageKey& key) {
  auto& pages = OSIM_SHARED_RW(pages_);  // Refreshes LRU state.
  auto it = pages.find(key);
  if (it != pages.end() && it->second.valid) {
    ++hits_;
    Touch(key, it->second);
    return true;
  }
  ++misses_;
  return false;
}

bool PageCache::IoInProgress(const PageKey& key) const {
  const auto& pages = OSIM_SHARED_RO(pages_);
  auto it = pages.find(key);
  return it != pages.end() && it->second.io_in_progress;
}

void PageCache::Touch(const PageKey& key, PageState& state) {
  if (state.in_lru) {
    lru_.erase(state.lru_pos);
  }
  lru_.push_front(key);
  state.lru_pos = lru_.begin();
  state.in_lru = true;
}

void PageCache::StartRead(const PageKey& key, std::uint64_t lba) {
  PageState& state = OSIM_SHARED_RW(pages_)[key];
  if (state.valid || state.io_in_progress) {
    return;
  }
  state.io_in_progress = true;
  state.lba = lba;
  ++reads_started_;
  disk_->Submit(osim::DiskOp::kRead, lba, kBlocksPerPage,
                [this, key](const osim::DiskRequestInfo&) {
                  // Completion runs in kernel context (exempt at runtime);
                  // the access still routes through the cell for uniformity.
                  auto& pages = OSIM_SHARED_RW(pages_);
                  auto it = pages.find(key);
                  if (it == pages.end()) {
                    return;  // Dropped while in flight.
                  }
                  PageState& s = it->second;
                  s.io_in_progress = false;
                  s.valid = true;
                  Touch(key, s);
                  if (s.waiters != nullptr) {
                    s.waiters->WakeAll();
                  }
                  EvictIfNeeded();
                });
}

Task<void> PageCache::WaitForPage(PageKey key) {
  while (true) {
    // Re-resolved each turn: the read is inside the loop so every
    // wakeup re-checks against the accessor's advanced clock.
    auto& pages = OSIM_SHARED_RW(pages_);
    auto it = pages.find(key);
    if (it != pages.end() && it->second.valid) {
      co_return;
    }
    if (it == pages.end()) {
      // Nobody started the read; nothing will ever wake us.
      throw std::logic_error("WaitForPage without StartRead");
    }
    PageState& state = it->second;
    if (state.waiters == nullptr) {
      state.waiters =
          std::make_unique<osim::WaitQueue>(kernel_, osprof::kLayerDriver);
    }
    co_await state.waiters->Wait();
  }
}

void PageCache::MarkValid(const PageKey& key, std::uint64_t lba) {
  PageState& state = OSIM_SHARED_RW(pages_)[key];
  state.valid = true;
  state.lba = lba;
  Touch(key, state);
  EvictIfNeeded();
}

void PageCache::MarkDirty(const PageKey& key, std::uint64_t lba) {
  PageState& state = OSIM_SHARED_RW(pages_)[key];
  if (!state.valid) {
    state.valid = true;  // Full-page overwrite semantics.
  }
  state.lba = lba;
  if (!state.dirty) {
    state.dirty = true;
    state.dirtied_at = kernel_->now();
  }
  Touch(key, state);
  EvictIfNeeded();
}

bool PageCache::IsDirty(const PageKey& key) const {
  const auto& pages = OSIM_SHARED_RO(pages_);
  auto it = pages.find(key);
  return it != pages.end() && it->second.dirty;
}

Task<void> PageCache::WriteBack(PageKey key) {
  auto& pages = OSIM_SHARED_RW(pages_);
  auto it = pages.find(key);
  if (it == pages.end() || !it->second.dirty) {
    co_return;
  }
  it->second.dirty = false;
  ++writebacks_;
  const std::uint64_t lba = it->second.lba;
  (void)co_await disk_->SyncWrite(lba, kBlocksPerPage);
}

int PageCache::FlushOlderThan(Cycles min_age) {
  const Cycles now = kernel_->now();
  int submitted = 0;
  for (auto& [key, state] : OSIM_SHARED_RW(pages_)) {
    if (state.dirty && now - state.dirtied_at >= min_age) {
      state.dirty = false;
      ++writebacks_;
      ++submitted;
      disk_->Submit(osim::DiskOp::kWrite, state.lba, kBlocksPerPage, nullptr);
    }
  }
  return submitted;
}

namespace {
Task<void> FlusherBody(Kernel* kernel, PageCache* cache, Cycles interval,
                       Cycles min_age) {
  while (true) {
    co_await kernel->Sleep(interval);
    co_await kernel->Cpu(2'000);  // Scan cost.
    cache->FlushOlderThan(min_age);
  }
}
}  // namespace

void PageCache::SpawnFlusher(Cycles interval, Cycles min_age) {
  kernel_->Spawn("bdflush", FlusherBody(kernel_, this, interval, min_age));
}

void PageCache::DropClean() {
  auto& pages = OSIM_SHARED_RW(pages_);
  for (auto it = pages.begin(); it != pages.end();) {
    PageState& state = it->second;
    if (state.valid && !state.dirty && !state.io_in_progress &&
        (state.waiters == nullptr || state.waiters->waiters() == 0)) {
      if (state.in_lru) {
        lru_.erase(state.lru_pos);
      }
      it = pages.erase(it);
    } else {
      ++it;
    }
  }
}

void PageCache::DropCleanForInode(int inode) {
  auto& pages = OSIM_SHARED_RW(pages_);
  for (auto it = pages.begin(); it != pages.end();) {
    PageState& state = it->second;
    if (it->first.inode == inode && state.valid && !state.dirty &&
        !state.io_in_progress &&
        (state.waiters == nullptr || state.waiters->waiters() == 0)) {
      if (state.in_lru) {
        lru_.erase(state.lru_pos);
      }
      it = pages.erase(it);
    } else {
      ++it;
    }
  }
}

void PageCache::EvictIfNeeded() {
  // Internal: always reached through an access-checked public entry.
  auto& pages = pages_.Write(__func__);
  while (lru_.size() > capacity_pages_ && !lru_.empty()) {
    const PageKey victim = lru_.back();
    auto it = pages.find(victim);
    if (it == pages.end()) {
      lru_.pop_back();
      continue;
    }
    PageState& state = it->second;
    if (state.io_in_progress ||
        (state.waiters != nullptr && state.waiters->waiters() > 0)) {
      // Busy page: rotate it to the front and stop for now.
      Touch(victim, state);
      return;
    }
    if (state.dirty) {
      // Asynchronous writeback on eviction.
      ++writebacks_;
      disk_->Submit(osim::DiskOp::kWrite, state.lba, kBlocksPerPage, nullptr);
    }
    lru_.pop_back();
    pages.erase(it);
    ++evictions_;
  }
}

}  // namespace osfs
