#include "src/fs/ext2fs.h"

#include <algorithm>
#include <stdexcept>

namespace osfs {
namespace {

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start < path.size()) {
    const std::size_t slash = path.find('/', start);
    const std::size_t end = slash == std::string::npos ? path.size() : slash;
    if (end > start) {
      parts.push_back(path.substr(start, end - start));
    }
    start = end + 1;
  }
  return parts;
}

}  // namespace

Ext2SimFs::Ext2SimFs(osim::Kernel* kernel, osim::SimDisk* disk,
                     Ext2Config config)
    : kernel_(kernel),
      disk_(disk),
      config_(config),
      cache_(kernel, disk, config.cache_pages),
      inodes_(*kernel, "ext2.inodes"),
      next_alloc_(*kernel, "ext2.next_alloc", 64),
      alloc_rng_(kernel->rng().Split()) {
  NewInode(/*is_dir=*/true);  // Root directory, inode 0.
}

void Ext2SimFs::ResolveProbes() {
  const struct {
    OpProbe* probe;
    const char* name;
  } kProbes[] = {
      {&probes_.open, "open"},       {&probes_.close, "close"},
      {&probes_.read, "read"},       {&probes_.readpage, "readpage"},
      {&probes_.write, "write"},     {&probes_.fsync, "fsync"},
      {&probes_.llseek, "llseek"},   {&probes_.readdir, "readdir"},
      {&probes_.mmap, "mmap"},       {&probes_.nopage, "nopage"},
      {&probes_.create, "create"},   {&probes_.unlink, "unlink"},
      {&probes_.stat, "stat"},       {&probes_.write_super, "write_super"},
  };
  for (const auto& entry : kProbes) {
    if (profiler_ != nullptr) {
      entry.probe->fs = profiler_->Resolve(entry.name);
    }
    if (callgraph_ != nullptr) {
      entry.probe->cg = callgraph_->Resolve(entry.name);
    }
  }
}

int Ext2SimFs::NewInode(bool is_dir) {
  auto& table = OSIM_SHARED_RW(inodes_);
  const int id = static_cast<int>(table.size());
  auto node = std::make_unique<Inode>();
  node->id = id;
  node->is_dir = is_dir;
  node->i_sem = std::make_unique<osim::SimSemaphore>(
      kernel_, 1, "i_sem:" + std::to_string(id));
  if (is_dir) {
    node->first_block = AllocateBlocks(kBlocksPerPage * 8);
    node->capacity_blocks = kBlocksPerPage * 8;
  }
  table.push_back(std::move(node));
  return id;
}

std::uint64_t Ext2SimFs::AllocateBlocks(std::uint64_t blocks) {
  std::uint64_t& next = OSIM_SHARED_RW(next_alloc_);
  const std::uint64_t device = disk_->config().num_blocks;
  if (config_.fragmentation > 0.0 &&
      alloc_rng_.Chance(config_.fragmentation)) {
    // Jump to a random track start, leaving headroom at the disk's end.
    const std::uint64_t per_track = disk_->config().blocks_per_track;
    const std::uint64_t tracks = (device - blocks) / per_track;
    next = alloc_rng_.Below(tracks) * per_track;
  }
  if (next + blocks >= device) {
    next = 64;
  }
  const std::uint64_t start = next;
  next += blocks;
  return start;
}

int Ext2SimFs::ResolvePath(const std::string& path) const {
  const auto& table = OSIM_SHARED_RO(inodes_);
  int id = 0;  // Root.
  for (const std::string& part : SplitPath(path)) {
    const Inode& node = *table[static_cast<std::size_t>(id)];
    if (!node.is_dir) {
      return -1;
    }
    auto it = node.entries.find(part);
    if (it == node.entries.end()) {
      return -1;
    }
    id = it->second;
  }
  return id;
}

std::pair<int, std::string> Ext2SimFs::ResolveParent(
    const std::string& path) const {
  const std::vector<std::string> parts = SplitPath(path);
  if (parts.empty()) {
    return {-1, ""};
  }
  const auto& table = OSIM_SHARED_RO(inodes_);
  int id = 0;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    const Inode& node = *table[static_cast<std::size_t>(id)];
    auto it = node.entries.find(parts[i]);
    if (it == node.entries.end() ||
        !table[static_cast<std::size_t>(it->second)]->is_dir) {
      return {-1, ""};
    }
    id = it->second;
  }
  return {id, parts.back()};
}

int Ext2SimFs::AddDir(const std::string& path) {
  const auto [parent, name] = ResolveParent(path);
  if (parent < 0) {
    throw std::invalid_argument("AddDir: missing parent for " + path);
  }
  Inode& p = inode(parent);
  if (p.entries.count(name) != 0) {
    throw std::invalid_argument("AddDir: exists: " + path);
  }
  const int id = NewInode(/*is_dir=*/true);
  p.entries[name] = id;
  p.entry_order.push_back(name);
  return id;
}

int Ext2SimFs::AddFile(const std::string& path, std::uint64_t size_bytes) {
  const auto [parent, name] = ResolveParent(path);
  if (parent < 0) {
    throw std::invalid_argument("AddFile: missing parent for " + path);
  }
  Inode& p = inode(parent);
  if (p.entries.count(name) != 0) {
    throw std::invalid_argument("AddFile: exists: " + path);
  }
  const int id = NewInode(/*is_dir=*/false);
  Inode& node = inode(id);
  node.size = size_bytes;
  const std::uint64_t blocks = std::max<std::uint64_t>(
      kBlocksPerPage, (size_bytes + kBlockBytes - 1) / kBlockBytes);
  node.first_block = AllocateBlocks(blocks);
  node.capacity_blocks = blocks;
  p.entries[name] = id;
  p.entry_order.push_back(name);
  return id;
}

Ext2SimFs::OpenFile& Ext2SimFs::file(int fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= fds_.size() ||
      !fds_[static_cast<std::size_t>(fd)].in_use) {
    throw std::invalid_argument("bad file descriptor");
  }
  return fds_[static_cast<std::size_t>(fd)];
}

int Ext2SimFs::AllocFd(int inode_id, bool direct_io) {
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    if (!fds_[i].in_use) {
      fds_[i] = OpenFile{inode_id, 0, direct_io, true};
      return static_cast<int>(i);
    }
  }
  fds_.push_back(OpenFile{inode_id, 0, direct_io, true});
  return static_cast<int>(fds_.size() - 1);
}

int Ext2SimFs::open_files() const {
  int n = 0;
  for (const OpenFile& f : fds_) {
    n += f.in_use ? 1 : 0;
  }
  return n;
}

bool Ext2SimFs::Exists(const std::string& path) const {
  return ResolvePath(path) >= 0;
}

std::uint64_t Ext2SimFs::FileSize(const std::string& path) const {
  const int id = ResolvePath(path);
  if (id < 0) {
    throw std::invalid_argument("FileSize: no such path: " + path);
  }
  const Inode& node = *OSIM_SHARED_RO(inodes_)[static_cast<std::size_t>(id)];
  return node.is_dir ? DirSizeBytes(node) : node.size;
}

Task<void> Ext2SimFs::CpuNoisy(osim::Cycles cycles) {
  double factor = 1.0;
  if (config_.cpu_noise_sigma > 0.0) {
    factor = kernel_->rng().LogNormal(1.0, config_.cpu_noise_sigma);
  }
  const auto noisy = static_cast<osim::Cycles>(
      std::max(1.0, static_cast<double>(cycles) * factor));
  co_await kernel_->Cpu(noisy);
}

// --- Open / Close -----------------------------------------------------------

Task<int> Ext2SimFs::Open(const std::string& path, bool direct_io) {
  return Profiled(probes_.open, OpenImpl(path, direct_io));
}

Task<int> Ext2SimFs::OpenImpl(const std::string& path, bool direct_io) {
  const std::size_t components = SplitPath(path).size();
  co_await CpuNoisy(config_.costs.open_base +
                    config_.costs.lookup_per_component * components);
  const int id = ResolvePath(path);
  if (id < 0) {
    co_return -1;
  }
  co_return AllocFd(id, direct_io);
}

Task<void> Ext2SimFs::Close(int fd) {
  return Profiled(probes_.close, CloseImpl(fd));
}

Task<void> Ext2SimFs::CloseImpl(int fd) {
  co_await CpuNoisy(config_.costs.close_base);
  file(fd).in_use = false;
}

// --- Read -------------------------------------------------------------------

Task<std::int64_t> Ext2SimFs::Read(int fd, std::uint64_t bytes) {
  return Profiled(probes_.read, ReadImpl(fd, bytes));
}

Task<std::int64_t> Ext2SimFs::ReadImpl(int fd, std::uint64_t bytes) {
  OpenFile& f = file(fd);
  Inode& node = inode(f.inode);
  if (node.is_dir) {
    co_return -1;
  }
  if (f.direct_io) {
    co_return co_await DirectRead(f, node, bytes);
  }
  co_return co_await BufferedRead(f, node, bytes);
}

Task<std::int64_t> Ext2SimFs::BufferedRead(OpenFile& f, Inode& node,
                                           std::uint64_t bytes) {
  co_await CpuNoisy(config_.costs.read_base);
  if (f.pos >= node.size || bytes == 0) {
    co_return 0;  // Zero-byte read / EOF: the Figure 3 fast path.
  }
  const std::uint64_t end = std::min(node.size, f.pos + bytes);
  const std::uint64_t first_page = f.pos / kPageBytes;
  const std::uint64_t last_page = (end - 1) / kPageBytes;
  for (std::uint64_t page = first_page; page <= last_page; ++page) {
    const PageKey key{node.id, page};
    if (!cache_.Contains(key)) {
      co_await ReadPage(node.id, page);
      co_await cache_.WaitForPage(key);
    }
    co_await CpuNoisy(config_.costs.read_copy_per_page);
  }
  const std::int64_t read = static_cast<std::int64_t>(end - f.pos);
  f.pos = end;
  co_return read;
}

Task<std::int64_t> Ext2SimFs::DirectRead(OpenFile& f, Inode& node,
                                         std::uint64_t bytes) {
  co_await CpuNoisy(config_.costs.read_base);
  if (f.pos >= node.size || bytes == 0) {
    co_return 0;
  }
  const std::uint64_t end = std::min(node.size, f.pos + bytes);
  const std::uint64_t first_block = node.first_block + f.pos / kBlockBytes;
  const std::uint64_t block_count = std::max<std::uint64_t>(
      1, (end - f.pos + kBlockBytes - 1) / kBlockBytes);
  // Linux 2.6.11 O_DIRECT holds i_sem across the transfer -- the very hold
  // the llseek of §6.1 collides with.
  co_await kernel_->Cpu(config_.costs.sem_op);
  co_await node.i_sem->Acquire();
  (void)co_await disk_->SyncRead(first_block, block_count);
  co_await kernel_->Cpu(config_.costs.sem_op);
  node.i_sem->Release();
  const std::int64_t read = static_cast<std::int64_t>(end - f.pos);
  f.pos = end;
  co_return read;
}

Task<void> Ext2SimFs::ReadPage(int inode_id, std::uint64_t page_index) {
  return Profiled(probes_.readpage, ReadPageImpl(inode_id, page_index));
}

Task<void> Ext2SimFs::ReadPageImpl(int inode_id, std::uint64_t page_index) {
  // Submission only: allocate the page, build the bio, queue it.  The
  // caller waits for completion separately, so this profile stays cheap
  // (Figure 7, bottom).
  Inode& node = inode(inode_id);
  co_await CpuNoisy(config_.costs.readpage_base);
  const std::uint64_t lba = node.first_block + page_index * kBlocksPerPage;
  cache_.StartRead(PageKey{inode_id, page_index}, lba);
}

// --- Write / Fsync ----------------------------------------------------------

Task<std::int64_t> Ext2SimFs::Write(int fd, std::uint64_t bytes) {
  return Profiled(probes_.write, WriteImpl(fd, bytes));
}

Task<std::int64_t> Ext2SimFs::WriteImpl(int fd, std::uint64_t bytes) {
  OpenFile& f = file(fd);
  Inode& node = inode(f.inode);
  if (node.is_dir || bytes == 0) {
    co_return node.is_dir ? -1 : 0;
  }
  co_await CpuNoisy(config_.costs.write_base);
  const std::uint64_t end = f.pos + bytes;
  // Grow the extent if the write outruns it (fresh contiguous extent; the
  // simulation has no data to copy).
  const std::uint64_t needed_blocks = (end + kBlockBytes - 1) / kBlockBytes;
  if (needed_blocks > node.capacity_blocks) {
    node.capacity_blocks = std::max(needed_blocks * 2,
                                    config_.create_reserve_blocks);
    node.first_block = AllocateBlocks(node.capacity_blocks);
  }
  if (f.direct_io) {
    const std::uint64_t first_block = node.first_block + f.pos / kBlockBytes;
    co_await kernel_->Cpu(config_.costs.sem_op);
    co_await node.i_sem->Acquire();
    (void)co_await disk_->SyncWrite(
        first_block, (bytes + kBlockBytes - 1) / kBlockBytes);
    co_await kernel_->Cpu(config_.costs.sem_op);
    node.i_sem->Release();
  } else {
    const std::uint64_t first_page = f.pos / kPageBytes;
    const std::uint64_t last_page = (end - 1) / kPageBytes;
    for (std::uint64_t page = first_page; page <= last_page; ++page) {
      cache_.MarkDirty(PageKey{node.id, page},
                       node.first_block + page * kBlocksPerPage);
      co_await CpuNoisy(config_.costs.write_per_page);
    }
  }
  node.size = std::max(node.size, end);
  f.pos = end;
  co_return static_cast<std::int64_t>(bytes);
}

Task<void> Ext2SimFs::Fsync(int fd) {
  return Profiled(probes_.fsync, FsyncImpl(fd));
}

Task<void> Ext2SimFs::FsyncImpl(int fd) {
  OpenFile& f = file(fd);
  Inode& node = inode(f.inode);
  co_await CpuNoisy(config_.costs.fsync_base);
  const std::uint64_t pages = (node.size + kPageBytes - 1) / kPageBytes;
  for (std::uint64_t page = 0; page < pages; ++page) {
    const PageKey key{node.id, page};
    if (cache_.IsDirty(key)) {
      co_await cache_.WriteBack(key);
    }
  }
}

// --- Llseek (§6.1) ----------------------------------------------------------

Task<std::uint64_t> Ext2SimFs::Llseek(int fd, std::uint64_t pos) {
  return Profiled(probes_.llseek, LlseekImpl(fd, pos));
}

Task<std::uint64_t> Ext2SimFs::LlseekImpl(int fd, std::uint64_t pos) {
  OpenFile& f = file(fd);
  Inode& node = inode(f.inode);
  if (config_.llseek_takes_i_sem) {
    // generic_file_llseek: i_sem protects the f_pos update even though the
    // file position is per-open-file -- the paper's discovered pathology.
    co_await kernel_->Cpu(config_.costs.sem_op);
    co_await node.i_sem->Acquire();
    co_await CpuNoisy(config_.costs.llseek_body);
    f.pos = pos;
    co_await kernel_->Cpu(config_.costs.sem_op);
    node.i_sem->Release();
  } else {
    // The patched llseek: plain f_pos update.
    co_await CpuNoisy(config_.costs.llseek_patched);
    f.pos = pos;
  }
  co_return f.pos;
}

// --- Readdir (§6.2) ---------------------------------------------------------

Task<DirentBatch> Ext2SimFs::Readdir(int fd) {
  if (callgraph_ != nullptr) {
    // Call-graph mode records the readdir->readpage nesting; value
    // correlation is a plain-profiler feature.
    std::uint64_t ignored = 0;
    co_return co_await callgraph_->Wrap(probes_.readdir.cg,
                                        ReaddirImpl(fd, &ignored));
  }
  if (profiler_ == nullptr) {
    std::uint64_t ignored = 0;
    co_return co_await ReaddirImpl(fd, &ignored);
  }
  // Record with the readdir_past_EOF * 1024 value of Figure 8, so an
  // attached ValueCorrelator can bind peaks to the EOF fast path.
  std::uint64_t past_eof_value = 0;
  co_return co_await profiler_->WrapWithValue(
      probes_.readdir.fs, ReaddirImpl(fd, &past_eof_value), &past_eof_value);
}

Task<DirentBatch> Ext2SimFs::ReaddirImpl(int fd,
                                         std::uint64_t* past_eof_out) {
  OpenFile& f = file(fd);
  Inode& node = inode(f.inode);
  DirentBatch batch;
  if (!node.is_dir) {
    batch.at_end = true;
    co_return batch;
  }
  const std::uint64_t dir_bytes = DirSizeBytes(node);
  if (f.pos >= dir_bytes) {
    // Past EOF: return immediately -- the first peak of Figure 7.
    *past_eof_out = 1024;
    co_await kernel_->Cpu(config_.costs.readdir_eof);
    batch.at_end = true;
    co_return batch;
  }
  *past_eof_out = 0;
  const std::uint64_t page = f.pos / kPageBytes;
  const PageKey key{node.id, page};
  if (!cache_.Contains(key)) {
    // Miss: initiate the I/O via readpage, then sleep on the page.
    co_await ReadPage(node.id, page);
    co_await cache_.WaitForPage(key);
  }
  // One getdents buffer worth of entries, bounded by the page: the next
  // call over the same page is a pure cache hit.
  const std::uint64_t first_entry = f.pos / kDirentBytes;
  const std::uint64_t page_last_entry = (page + 1) * (kPageBytes / kDirentBytes);
  const std::uint64_t entries_in_dir = node.entry_order.size();
  const std::uint64_t last_entry =
      std::min({entries_in_dir, page_last_entry,
                first_entry + config_.entries_per_readdir});
  const std::uint64_t count = last_entry - first_entry;
  co_await CpuNoisy(config_.costs.readdir_base +
                    config_.costs.readdir_per_entry * count);
  for (std::uint64_t i = first_entry; i < last_entry; ++i) {
    batch.names.push_back(node.entry_order[i]);
  }
  f.pos = std::min(dir_bytes, last_entry * kDirentBytes);
  batch.at_end = f.pos >= dir_bytes;
  co_return batch;
}

// --- Memory mapping -----------------------------------------------------------

Task<int> Ext2SimFs::Mmap(int fd) {
  return Profiled(probes_.mmap, MmapImpl(fd));
}

Task<int> Ext2SimFs::MmapImpl(int fd) {
  OpenFile& f = file(fd);
  Inode& node = inode(f.inode);
  if (node.is_dir) {
    co_return -1;
  }
  // Build the vma: no pages are populated (demand paging).
  co_await CpuNoisy(1'200);
  for (std::size_t i = 0; i < mappings_.size(); ++i) {
    if (!mappings_[i].in_use) {
      mappings_[i] = MmapRegion{};
      mappings_[i].inode = f.inode;
      mappings_[i].in_use = true;
      co_return static_cast<int>(i);
    }
  }
  mappings_.emplace_back();
  mappings_.back().inode = f.inode;
  mappings_.back().in_use = true;
  co_return static_cast<int>(mappings_.size() - 1);
}

Task<void> Ext2SimFs::MemAccess(int mapping, std::uint64_t offset) {
  if (mapping < 0 || static_cast<std::size_t>(mapping) >= mappings_.size() ||
      !mappings_[static_cast<std::size_t>(mapping)].in_use) {
    throw std::invalid_argument("bad mapping id");
  }
  MmapRegion& region = mappings_[static_cast<std::size_t>(mapping)];
  const std::uint64_t page = offset / kPageBytes;
  if (region.present.count(page) != 0) {
    // PTE present: a plain memory access, no kernel entry.
    co_await kernel_->CpuUser(4);
    co_return;
  }
  co_await Profiled(probes_.nopage, NopageImpl(mapping, page));
}

Task<void> Ext2SimFs::NopageImpl(int mapping, std::uint64_t page) {
  // The filemap_nopage path: find or fault in the page, install the PTE.
  MmapRegion& region = mappings_[static_cast<std::size_t>(mapping)];
  Inode& node = inode(region.inode);
  const PageKey key{node.id, page};
  if (cache_.Contains(key)) {
    ++minor_faults_;
    co_await CpuNoisy(1'500);  // Minor fault: map the cached page.
  } else {
    ++major_faults_;
    co_await CpuNoisy(2'500);  // Fault setup before the I/O.
    co_await ReadPage(node.id, page);
    co_await cache_.WaitForPage(key);
  }
  region.present.insert(page);
}

// --- Namespace operations ---------------------------------------------------

Task<int> Ext2SimFs::Create(const std::string& path) {
  return Profiled(probes_.create, CreateImpl(path));
}

Task<int> Ext2SimFs::CreateImpl(const std::string& path) {
  co_await CpuNoisy(config_.costs.create_base);
  const auto [parent, name] = ResolveParent(path);
  if (parent < 0 || name.empty()) {
    co_return -1;
  }
  Inode& p = inode(parent);
  if (p.entries.count(name) != 0) {
    co_return -1;
  }
  const int id = NewInode(/*is_dir=*/false);
  Inode& node = inode(id);
  node.capacity_blocks = config_.create_reserve_blocks;
  node.first_block = AllocateBlocks(node.capacity_blocks);
  p.entries[name] = id;
  p.entry_order.push_back(name);
  // Dirty the directory page holding the new entry.
  const std::uint64_t entry_page =
      (p.entry_order.size() - 1) * kDirentBytes / kPageBytes;
  cache_.MarkDirty(PageKey{p.id, entry_page},
                   p.first_block + entry_page * kBlocksPerPage);
  co_return AllocFd(id, /*direct_io=*/false);
}

Task<void> Ext2SimFs::Unlink(const std::string& path) {
  return Profiled(probes_.unlink, UnlinkImpl(path));
}

Task<void> Ext2SimFs::UnlinkImpl(const std::string& path) {
  co_await CpuNoisy(config_.costs.unlink_base);
  const auto [parent, name] = ResolveParent(path);
  if (parent < 0) {
    co_return;
  }
  Inode& p = inode(parent);
  auto it = p.entries.find(name);
  if (it == p.entries.end()) {
    co_return;
  }
  inode(it->second).unlinked = true;
  p.entries.erase(it);
  p.entry_order.erase(
      std::find(p.entry_order.begin(), p.entry_order.end(), name));
  cache_.MarkDirty(PageKey{p.id, 0}, p.first_block);
}

Task<FileAttr> Ext2SimFs::Stat(const std::string& path) {
  return Profiled(probes_.stat, StatImpl(path));
}

Task<FileAttr> Ext2SimFs::StatImpl(const std::string& path) {
  const std::size_t components = SplitPath(path).size();
  co_await CpuNoisy(config_.costs.stat_base +
                    config_.costs.lookup_per_component * components);
  FileAttr attr;
  const int id = ResolvePath(path);
  if (id >= 0) {
    const Inode& node = inode(id);
    attr.is_dir = node.is_dir;
    attr.size = node.is_dir ? DirSizeBytes(node) : node.size;
  }
  co_return attr;
}

}  // namespace osfs
