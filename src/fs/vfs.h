// The VFS interface of the simulated OS.
//
// Mirrors the vector-of-operations structure the paper's FoSgen
// instrumenter relies on: each operation is a virtual coroutine, so file
// systems implement them, profiling layers stack on top of them
// (nullfs/Wrapfs style), and workloads call them like system calls.

#ifndef OSPROF_SRC_FS_VFS_H_
#define OSPROF_SRC_FS_VFS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/task.h"

namespace osfs {

using osim::Task;

struct FileAttr {
  std::uint64_t size = 0;
  bool is_dir = false;
};

// One readdir call returns the entries of one directory page, like the
// getdents buffer fills the paper's workloads issue repeatedly until an
// empty (past-EOF) result.
struct DirentBatch {
  std::vector<std::string> names;
  bool at_end = false;
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  // Opens a file or directory; returns a descriptor.  `direct_io` selects
  // the O_DIRECT read/write path (bypasses the page cache, holds i_sem for
  // the duration of the transfer, as Linux 2.6.11 did).
  virtual Task<int> Open(const std::string& path, bool direct_io) = 0;
  virtual Task<void> Close(int fd) = 0;

  // Reads `bytes` at the current position, advancing it.  Returns bytes
  // read (0 at EOF).
  virtual Task<std::int64_t> Read(int fd, std::uint64_t bytes) = 0;

  // Appends/overwrites `bytes` at the current position, advancing it and
  // extending the file as needed.  Buffered writes return after dirtying
  // the page cache; their disk latency is only visible to a driver-level
  // profiler (§4, "Driver-level profilers").
  virtual Task<std::int64_t> Write(int fd, std::uint64_t bytes) = 0;

  // Sets the file position.  On an unpatched fs this is
  // generic_file_llseek and takes the inode semaphore (§6.1).
  virtual Task<std::uint64_t> Llseek(int fd, std::uint64_t pos) = 0;

  // Returns the next batch of directory entries, or at_end when the
  // position is past the directory's end.
  virtual Task<DirentBatch> Readdir(int fd) = 0;

  // Writes back the file's dirty pages synchronously.
  virtual Task<void> Fsync(int fd) = 0;

  // Creates a file and opens it.
  virtual Task<int> Create(const std::string& path) = 0;
  virtual Task<void> Unlink(const std::string& path) = 0;
  virtual Task<FileAttr> Stat(const std::string& path) = 0;
};

}  // namespace osfs

#endif  // OSPROF_SRC_FS_VFS_H_
