// The page cache and its flushing daemon.
//
// Models the Linux 2.6 page cache semantics the paper's readdir analysis
// depends on (§6.2): a missing page is *initiated* by readpage (cheap,
// asynchronous submission -- its latency shows in the readpage profile)
// and the caller then sleeps until the I/O completes (that wait shows in
// the *caller's* profile, producing Figure 7's third and fourth peaks).
//
// Dirty pages age and are written back by a bdflush-style daemon
// (SpawnFlusher), which is what gives atime updates and write_super their
// periodic personality (§6.3).

#ifndef OSPROF_SRC_FS_PAGE_CACHE_H_
#define OSPROF_SRC_FS_PAGE_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>

#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/sim/race_tracker.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace osfs {

using osim::Cycles;
using osim::Kernel;
using osim::SimDisk;
using osim::Task;

inline constexpr std::uint64_t kPageBytes = 4096;
inline constexpr std::uint64_t kBlockBytes = 512;
inline constexpr std::uint64_t kBlocksPerPage = kPageBytes / kBlockBytes;

// Identifies a page: (inode id, page index within the file).
struct PageKey {
  int inode = 0;
  std::uint64_t page = 0;
  auto operator<=>(const PageKey&) const = default;
};

class PageCache {
 public:
  PageCache(Kernel* kernel, SimDisk* disk, std::uint64_t capacity_pages);

  // True if the page is resident and valid (counts as a cache hit and
  // refreshes its LRU position).
  bool Contains(const PageKey& key);

  // True if a read for the page is already in flight.
  bool IoInProgress(const PageKey& key) const;

  // Submits the disk read backing `key` (8 blocks at `lba`) unless the
  // page is already valid or in flight.  Returns immediately -- this is
  // the asynchronous half of readpage.
  void StartRead(const PageKey& key, std::uint64_t lba);

  // Blocks the calling simulated thread until the page is valid.
  Task<void> WaitForPage(PageKey key);

  // Creates/validates a page without I/O (full-page overwrite).
  void MarkValid(const PageKey& key, std::uint64_t lba);

  // Marks a resident page dirty; the flusher or Fsync writes it back.
  void MarkDirty(const PageKey& key, std::uint64_t lba);
  bool IsDirty(const PageKey& key) const;

  // Writes one dirty page synchronously (fsync path); no-op if clean.
  Task<void> WriteBack(PageKey key);

  // Submits asynchronous writeback for every dirty page older than
  // `min_age`; returns how many were submitted.
  int FlushOlderThan(Cycles min_age);

  // Spawns the bdflush-style daemon: every `interval` cycles it writes
  // back dirty pages older than `min_age`.  The daemon runs forever; drive
  // such scenarios with Kernel::RunFor.
  void SpawnFlusher(Cycles interval, Cycles min_age);

  // Drops every clean page (and forgets LRU history).  Dirty and in-flight
  // pages survive.
  void DropClean();

  // Drops one inode's clean pages: cluster-coherence invalidation
  // (ClusterFs calls this when the DLM tells it another node wrote the
  // inode, so the next read refetches from the shared disk).
  void DropCleanForInode(int inode);

  // Statistics.
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t reads_started() const { return reads_started_; }
  std::uint64_t writebacks() const { return writebacks_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t resident_pages() const { return OSIM_SHARED_RO(pages_).size(); }

 private:
  struct PageState {
    bool valid = false;
    bool dirty = false;
    bool io_in_progress = false;
    std::uint64_t lba = 0;
    Cycles dirtied_at = 0;
    std::unique_ptr<osim::WaitQueue> waiters;
    std::list<PageKey>::iterator lru_pos;
    bool in_lru = false;
  };

  void Touch(const PageKey& key, PageState& state);
  void EvictIfNeeded();

  Kernel* kernel_;
  SimDisk* disk_;
  std::uint64_t capacity_pages_;
  // The page table's protocol spans awaits (StartRead submits, the caller
  // sleeps in WaitForPage, the completion validates), so it is a
  // race-checked cell.  lru_ and the counters below share its protocol:
  // every mutation goes through an access recorded on this cell.
  osim::Shared<std::map<PageKey, PageState>> pages_;
  std::list<PageKey> lru_;  // Front = most recently used.
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t reads_started_ = 0;
  std::uint64_t writebacks_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace osfs

#endif  // OSPROF_SRC_FS_PAGE_CACHE_H_
