// An NTFS-like simulated file system with Windows I/O-manager semantics.
//
// Two behaviours from the paper distinguish it from the Ext2 model:
//
//  * §4 ("Windows file-system-level profilers"): most I/O requests are
//    described by an IRP, whose allocation/dispatch overhead dominates
//    cheap cached operations, so Windows provides Fast I/O to bypass the
//    intermediate layers when data is cached.  Reads here take the cheap
//    Fast I/O path on page-cache hits and the expensive IRP path
//    otherwise -- giving the characteristically bimodal Windows read
//    profile even before the disk is involved.
//
//  * §6.1: "We ran the same workload on a Windows NTFS le system and
//    found no lock contention.  This is because keeping the current le
//    position consistent is left to user-level applications on Windows."
//    Llseek (SetFilePointer) only updates the handle's position; O_DIRECT
//    reads do not serialize on an inode semaphore.

#ifndef OSPROF_SRC_FS_NTFS_H_
#define OSPROF_SRC_FS_NTFS_H_

#include "src/fs/ext2fs.h"

namespace osfs {

struct NtfsCosts {
  // Fast I/O: a direct call into the cache manager.
  osim::Cycles fast_io_read = 900;
  // IRP path: allocate the packet, walk the driver stack, complete it.
  osim::Cycles irp_build = 2'500;
  osim::Cycles irp_complete = 1'200;
  // SetFilePointer: per-handle update, no shared lock.
  osim::Cycles set_file_pointer = 130;
};

class NtfsSimFs : public Ext2SimFs {
 public:
  NtfsSimFs(osim::Kernel* kernel, osim::SimDisk* disk, Ext2Config config = {},
            NtfsCosts ntfs_costs = {});

  // Statistics for tests/benches.
  std::uint64_t fast_io_reads() const { return fast_io_; }
  std::uint64_t irp_reads() const { return irps_; }

  // SetFilePointer semantics: never takes a shared lock.
  Task<std::uint64_t> Llseek(int fd, std::uint64_t pos) override;

 protected:
  Task<std::int64_t> ReadImpl(int fd, std::uint64_t bytes) override;
  Task<std::uint64_t> LlseekNtfsImpl(int fd, std::uint64_t pos);

 private:
  NtfsCosts ntfs_costs_;
  std::uint64_t fast_io_ = 0;
  std::uint64_t irps_ = 0;
};

}  // namespace osfs

#endif  // OSPROF_SRC_FS_NTFS_H_
