#include "src/fs/ntfs.h"

#include <algorithm>

namespace osfs {

NtfsSimFs::NtfsSimFs(osim::Kernel* kernel, osim::SimDisk* disk,
                     Ext2Config config, NtfsCosts ntfs_costs)
    : Ext2SimFs(kernel, disk, config), ntfs_costs_(ntfs_costs) {}

Task<std::uint64_t> NtfsSimFs::Llseek(int fd, std::uint64_t pos) {
  return Profiled(probes_.llseek, LlseekNtfsImpl(fd, pos));
}

Task<std::uint64_t> NtfsSimFs::LlseekNtfsImpl(int fd, std::uint64_t pos) {
  // SetFilePointer: the position lives in the handle; no shared state, no
  // lock (§6.1's NTFS result).
  co_await CpuNoisy(ntfs_costs_.set_file_pointer);
  OpenFile& f = file(fd);
  f.pos = pos;
  co_return f.pos;
}

Task<std::int64_t> NtfsSimFs::ReadImpl(int fd, std::uint64_t bytes) {
  OpenFile& f = file(fd);
  Inode& node = inode(f.inode);
  if (node.is_dir) {
    co_return -1;
  }
  if (f.pos >= node.size || bytes == 0) {
    // Degenerate requests complete through Fast I/O.
    ++fast_io_;
    co_await CpuNoisy(ntfs_costs_.fast_io_read / 4);
    co_return 0;
  }
  const std::uint64_t end = std::min(node.size, f.pos + bytes);
  const std::uint64_t first_page = f.pos / kPageBytes;
  const std::uint64_t last_page = (end - 1) / kPageBytes;

  if (f.direct_io) {
    // Unbuffered I/O always builds an IRP; unlike Linux 2.6.11 O_DIRECT
    // there is no inode semaphore held across the transfer.
    ++irps_;
    co_await CpuNoisy(ntfs_costs_.irp_build);
    const std::uint64_t first_block = node.first_block + f.pos / kBlockBytes;
    const std::uint64_t count = std::max<std::uint64_t>(
        1, (end - f.pos + kBlockBytes - 1) / kBlockBytes);
    (void)co_await disk_->SyncRead(first_block, count);
    co_await CpuNoisy(ntfs_costs_.irp_complete);
    const std::int64_t got = static_cast<std::int64_t>(end - f.pos);
    f.pos = end;
    co_return got;
  }

  bool all_cached = true;
  for (std::uint64_t page = first_page; page <= last_page; ++page) {
    if (!cache_.Contains(PageKey{node.id, page})) {
      all_cached = false;
    }
  }

  if (all_cached) {
    // Fast I/O: bypass the driver stack and copy straight from the cache
    // manager (the cheap mode of the bimodal Windows read profile).
    ++fast_io_;
    co_await CpuNoisy(ntfs_costs_.fast_io_read);
    for (std::uint64_t page = first_page; page <= last_page; ++page) {
      co_await CpuNoisy(config_.costs.read_copy_per_page);
    }
  } else {
    // The full IRP path: build the packet, fault the missing pages in,
    // complete the packet.
    ++irps_;
    co_await CpuNoisy(ntfs_costs_.irp_build);
    for (std::uint64_t page = first_page; page <= last_page; ++page) {
      const PageKey key{node.id, page};
      if (!cache_.Contains(key)) {
        co_await ReadPage(node.id, page);
        co_await cache_.WaitForPage(key);
      }
      co_await CpuNoisy(config_.costs.read_copy_per_page);
    }
    co_await CpuNoisy(ntfs_costs_.irp_complete);
  }
  const std::int64_t got = static_cast<std::int64_t>(end - f.pos);
  f.pos = end;
  co_return got;
}

}  // namespace osfs
