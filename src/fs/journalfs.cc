#include "src/fs/journalfs.h"

namespace osfs {

JournalFs::JournalFs(osim::Kernel* kernel, osim::SimDisk* disk,
                     Ext2Config config, JournalConfig journal)
    : Ext2SimFs(kernel, disk, config),
      journal_(journal),
      super_lock_(kernel, 1, "reiserfs_super_lock"),
      write_super_count_(*kernel, "journal.write_super_count") {}

Task<std::int64_t> JournalFs::ReadImpl(int fd, std::uint64_t bytes) {
  // The coarse lock covers the read path; while write_super commits the
  // journal, reads queue behind it (Figure 9's vertical stripes).
  co_await kernel_->Cpu(config_.costs.sem_op);
  co_await super_lock_.Acquire();
  std::int64_t result;
  try {
    result = co_await Ext2SimFs::ReadImpl(fd, bytes);
  } catch (...) {
    super_lock_.Release();
    throw;
  }
  co_await kernel_->Cpu(config_.costs.sem_op);
  super_lock_.Release();
  co_return result;
}

Task<void> JournalFs::WriteSuper() {
  return Profiled(probes_.write_super, WriteSuperImpl());
}

Task<void> JournalFs::WriteSuperImpl() {
  co_await kernel_->Cpu(config_.costs.sem_op);
  co_await super_lock_.Acquire();
  co_await kernel_->Cpu(journal_.commit_cpu);
  // Commit: a burst of synchronous journal writes.  Each lands in the
  // journal area; the first pays a seek, the rest rotation + transfer, for
  // a hold time of tens of milliseconds.
  for (int i = 0; i < journal_.commit_pages; ++i) {
    const std::uint64_t lba =
        journal_.journal_lba + static_cast<std::uint64_t>(i) * kBlocksPerPage;
    (void)co_await disk_->SyncWrite(lba, kBlocksPerPage);
  }
  ++OSIM_SHARED_RW(write_super_count_);
  co_await kernel_->Cpu(config_.costs.sem_op);
  super_lock_.Release();
}

namespace {
Task<void> SuperDaemonBody(osim::Kernel* kernel, JournalFs* fs,
                           osim::Cycles interval) {
  while (true) {
    co_await kernel->Sleep(interval);
    co_await fs->WriteSuper();
  }
}
}  // namespace

void JournalFs::SpawnSuperDaemon() {
  kernel_->Spawn("reiserfs_flusher",
                 SuperDaemonBody(kernel_, this, journal_.super_interval));
}

}  // namespace osfs
