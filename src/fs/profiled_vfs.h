// A stackable profiling layer (paper Figure 2, "User Level Profiler" /
// nullfs-style layered profiling).
//
// Wraps any Vfs and records the latency of every operation that crosses
// the boundary into its own SimProfiler.  Stacking one of these above an
// in-fs-instrumented Ext2SimFs gives the two-layer view the paper uses to
// separate VFS/syscall overhead from lower-file-system behaviour:
// comparing the layers' profiles isolates where time is spent.

#ifndef OSPROF_SRC_FS_PROFILED_VFS_H_
#define OSPROF_SRC_FS_PROFILED_VFS_H_

#include <string>

#include "src/fs/vfs.h"
#include "src/profilers/sim_profiler.h"

namespace osfs {

class ProfiledVfs : public Vfs {
 public:
  // `prefix` distinguishes layers in reports (e.g. "user." or "fs.").
  ProfiledVfs(Vfs* inner, osprofilers::SimProfiler* profiler,
              std::string prefix = "")
      : inner_(inner), profiler_(profiler), prefix_(std::move(prefix)) {}

  Task<int> Open(const std::string& path, bool direct_io) override {
    return profiler_->Wrap(prefix_ + "open", inner_->Open(path, direct_io));
  }
  Task<void> Close(int fd) override {
    return profiler_->Wrap(prefix_ + "close", inner_->Close(fd));
  }
  Task<std::int64_t> Read(int fd, std::uint64_t bytes) override {
    return profiler_->Wrap(prefix_ + "read", inner_->Read(fd, bytes));
  }
  Task<std::int64_t> Write(int fd, std::uint64_t bytes) override {
    return profiler_->Wrap(prefix_ + "write", inner_->Write(fd, bytes));
  }
  Task<std::uint64_t> Llseek(int fd, std::uint64_t pos) override {
    return profiler_->Wrap(prefix_ + "llseek", inner_->Llseek(fd, pos));
  }
  Task<DirentBatch> Readdir(int fd) override {
    return profiler_->Wrap(prefix_ + "readdir", inner_->Readdir(fd));
  }
  Task<void> Fsync(int fd) override {
    return profiler_->Wrap(prefix_ + "fsync", inner_->Fsync(fd));
  }
  Task<int> Create(const std::string& path) override {
    return profiler_->Wrap(prefix_ + "create", inner_->Create(path));
  }
  Task<void> Unlink(const std::string& path) override {
    return profiler_->Wrap(prefix_ + "unlink", inner_->Unlink(path));
  }
  Task<FileAttr> Stat(const std::string& path) override {
    return profiler_->Wrap(prefix_ + "stat", inner_->Stat(path));
  }

  Vfs* inner() const { return inner_; }

 private:
  Vfs* inner_;
  osprofilers::SimProfiler* profiler_;
  std::string prefix_;
};

}  // namespace osfs

#endif  // OSPROF_SRC_FS_PROFILED_VFS_H_
