// A stackable profiling layer (paper Figure 2, "User Level Profiler" /
// nullfs-style layered profiling).
//
// Wraps any Vfs and records the latency of every operation that crosses
// the boundary into its own SimProfiler.  Stacking one of these above an
// in-fs-instrumented Ext2SimFs gives the two-layer view the paper uses to
// separate VFS/syscall overhead from lower-file-system behaviour:
// comparing the layers' profiles isolates where time is spent.

#ifndef OSPROF_SRC_FS_PROFILED_VFS_H_
#define OSPROF_SRC_FS_PROFILED_VFS_H_

#include <string>

#include "src/fs/vfs.h"
#include "src/profilers/sim_profiler.h"

namespace osfs {

class ProfiledVfs : public Vfs {
 public:
  // `prefix` distinguishes layers in reports (e.g. "user." or "fs.").
  // The ten per-op probe names ("<prefix>open", ...) are resolved here,
  // once; the per-call path hands SimProfiler a ProbeHandle instead of
  // heap-allocating `prefix_ + "open"` on every operation.
  ProfiledVfs(Vfs* inner, osprofilers::SimProfiler* profiler,
              std::string prefix = "")
      : inner_(inner), profiler_(profiler), prefix_(std::move(prefix)) {
    open_ = profiler_->Resolve(prefix_ + "open");
    close_ = profiler_->Resolve(prefix_ + "close");
    read_ = profiler_->Resolve(prefix_ + "read");
    write_ = profiler_->Resolve(prefix_ + "write");
    llseek_ = profiler_->Resolve(prefix_ + "llseek");
    readdir_ = profiler_->Resolve(prefix_ + "readdir");
    fsync_ = profiler_->Resolve(prefix_ + "fsync");
    create_ = profiler_->Resolve(prefix_ + "create");
    unlink_ = profiler_->Resolve(prefix_ + "unlink");
    stat_ = profiler_->Resolve(prefix_ + "stat");
  }

  // Each override is a thin coroutine adapting the virtual Task<T>
  // interface to Wrap's frame-free awaitable; the adapter frame replaces
  // the coroutine frame Wrap itself used to allocate, so the per-op frame
  // count is unchanged.
  Task<int> Open(const std::string& path, bool direct_io) override {
    co_return co_await profiler_->Wrap(open_, inner_->Open(path, direct_io));
  }
  Task<void> Close(int fd) override {
    co_await profiler_->Wrap(close_, inner_->Close(fd));
  }
  Task<std::int64_t> Read(int fd, std::uint64_t bytes) override {
    co_return co_await profiler_->Wrap(read_, inner_->Read(fd, bytes));
  }
  Task<std::int64_t> Write(int fd, std::uint64_t bytes) override {
    co_return co_await profiler_->Wrap(write_, inner_->Write(fd, bytes));
  }
  Task<std::uint64_t> Llseek(int fd, std::uint64_t pos) override {
    co_return co_await profiler_->Wrap(llseek_, inner_->Llseek(fd, pos));
  }
  Task<DirentBatch> Readdir(int fd) override {
    co_return co_await profiler_->Wrap(readdir_, inner_->Readdir(fd));
  }
  Task<void> Fsync(int fd) override {
    co_await profiler_->Wrap(fsync_, inner_->Fsync(fd));
  }
  Task<int> Create(const std::string& path) override {
    co_return co_await profiler_->Wrap(create_, inner_->Create(path));
  }
  Task<void> Unlink(const std::string& path) override {
    co_await profiler_->Wrap(unlink_, inner_->Unlink(path));
  }
  Task<FileAttr> Stat(const std::string& path) override {
    co_return co_await profiler_->Wrap(stat_, inner_->Stat(path));
  }

  Vfs* inner() const { return inner_; }

 private:
  Vfs* inner_;
  osprofilers::SimProfiler* profiler_;
  std::string prefix_;
  // Pre-resolved probe handles, one per Vfs operation.
  osprof::ProbeHandle open_, close_, read_, write_, llseek_, readdir_,
      fsync_, create_, unlink_, stat_;
};

}  // namespace osfs

#endif  // OSPROF_SRC_FS_PROFILED_VFS_H_
