#include "src/fs/ext3.h"

namespace osfs {

Ext3SimFs::Ext3SimFs(osim::Kernel* kernel, osim::SimDisk* disk,
                     Ext2Config config, Ext3Journal journal)
    : Ext2SimFs(kernel, disk, config),
      journal_(journal),
      journal_lock_(kernel, 1, "jbd_transaction") {}

Task<void> Ext3SimFs::Fsync(int fd) {
  return Profiled(probes_.fsync, FsyncOrderedImpl(fd));
}

Task<void> Ext3SimFs::FsyncOrderedImpl(int fd) {
  // Ordered mode: data before metadata.  Reuse Ext2's data writeback...
  co_await FsyncImpl(fd);
  // ...then commit the metadata transaction to the journal.  Journal
  // writes are sequential at the journal head, so after the first seek
  // they are cheap -- the "journal commit" fsync mode sits between a pure
  // cache commit and a full data writeback.
  co_await journal_lock_.Acquire();
  co_await kernel_->Cpu(journal_.commit_cpu);
  const std::uint64_t lba =
      journal_.journal_lba + journal_head_ * kBlocksPerPage;
  journal_head_ =
      (journal_head_ + journal_.commit_record_blocks) %
      (journal_.journal_blocks / kBlocksPerPage);
  (void)co_await disk_->SyncWrite(
      lba, journal_.commit_record_blocks * kBlocksPerPage);
  ++commits_;
  journal_lock_.Release();
}

}  // namespace osfs
