// An Ext3-like file system: Ext2 plus an ordered-mode journal.
//
// The paper profiles Ext3 alongside Ext2 (§7).  The observable difference
// is the synchronous-write path: in data=ordered mode an fsync commits
// the journal -- data blocks first, then a journal descriptor+commit
// record written sequentially to the journal area -- so fsync latency
// gains a characteristic extra mode (journal commit) on top of Ext2's
// plain writeback, and a second fsync with nothing dirty still pays a
// small commit-check cost.

#ifndef OSPROF_SRC_FS_EXT3_H_
#define OSPROF_SRC_FS_EXT3_H_

#include "src/fs/ext2fs.h"

namespace osfs {

struct Ext3Journal {
  std::uint64_t journal_lba = 3'000'000;  // The journal extent.
  std::uint64_t journal_blocks = 8'192;
  // CPU cost of assembling a transaction.
  osim::Cycles commit_cpu = 6'000;
  // Blocks per descriptor+commit record pair.
  std::uint64_t commit_record_blocks = 2;
};

class Ext3SimFs : public Ext2SimFs {
 public:
  Ext3SimFs(osim::Kernel* kernel, osim::SimDisk* disk, Ext2Config config = {},
            Ext3Journal journal = {});

  // data=ordered fsync: flush the file's data pages, then write the
  // journal metadata transaction (descriptor + commit record) at the
  // journal head.  Profiled as "fsync" like Ext2's, so the two file
  // systems' fsync profiles compare directly.
  Task<void> Fsync(int fd) override;

  std::uint64_t commits() const { return commits_; }

 private:
  Task<void> FsyncOrderedImpl(int fd);

  Ext3Journal journal_;
  std::uint64_t journal_head_ = 0;  // Offset into the journal extent.
  std::uint64_t commits_ = 0;
  // Serializes journal commits, like jbd's single running transaction.
  osim::SimSemaphore journal_lock_;
};

}  // namespace osfs

#endif  // OSPROF_SRC_FS_EXT3_H_
