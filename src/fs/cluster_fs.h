// An OCFS2-style shared-disk cluster file system.
//
// One ClusterVolume (the shared disk plus the on-disk inode table) is
// mounted by N ClusterFsNode instances, one per osim::Node.  Every node
// has its *own* page cache and inode semaphores -- caching is local --
// but the metadata is cluster-wide, so each operation first takes the
// inode's DLM lock (src/net/dlm.h): protected-read for read/stat/readdir,
// exclusive for write/create/unlink.  The DLM keeps grants cached
// per-node, so a node re-reading its own file pays nothing; the moment
// another node writes, the grant ping-pongs -- BAST, dirty-page flush,
// regrant -- and the waiting client's profile shows the stall split
// between kLayerNet (wire round trip to the lock master) and
// kLayerLockWait (queued behind the peer's revoke), which is the layered
// decomposition's hardest attribution case (ROADMAP item 4).
//
// Coherence protocol: a writer under EX bumps the inode's generation
// number; every node remembers the generation its cached pages belong
// to and, on the first lock grant after a foreign write, drops the
// inode's clean pages (the peer's pre-grant flush guarantees the shared
// disk is current by then).  Lock order is DLM lock first, then the
// local i_sem -- never the reverse, since holding i_sem across a DLM
// wait would deadlock against the revoke path, which takes i_sem to
// flush.

#ifndef OSPROF_SRC_FS_CLUSTER_FS_H_
#define OSPROF_SRC_FS_CLUSTER_FS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/fs/page_cache.h"
#include "src/fs/vfs.h"
#include "src/net/dlm.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/sim/race_tracker.h"
#include "src/sim/sync.h"

namespace osfs {

using osprofilers::SimProfiler;

struct ClusterCosts {
  osim::Cycles open_base = 520;
  osim::Cycles lookup_per_component = 350;
  osim::Cycles close_base = 150;
  osim::Cycles read_base = 380;
  osim::Cycles read_copy_per_page = 1'400;
  osim::Cycles readpage_base = 600;
  osim::Cycles write_base = 430;
  osim::Cycles write_per_page = 1'600;
  osim::Cycles llseek_base = 200;
  osim::Cycles fsync_base = 500;
  osim::Cycles stat_base = 320;
  osim::Cycles readdir_base = 450;
  osim::Cycles create_base = 2'600;
  osim::Cycles unlink_base = 1'400;
};

struct ClusterFsConfig {
  ClusterCosts costs;
  std::uint64_t cache_pages = 4'096;  // Per node.
  double cpu_noise_sigma = 0.25;
};

// Cluster-wide inode state, one Shared cell per inode: written only
// under the inode's EX DLM lock (plus the writer's local i_sem), read
// under at least PR, so the DLM grant chain is exactly the
// happens-before order SimRace checks.
struct ClusterInodeMeta {
  bool is_dir = false;
  bool unlinked = false;
  std::uint64_t size = 0;  // Bytes; directories derive it from entries.
  std::uint64_t first_block = 0;
  std::uint64_t capacity_blocks = 0;
  // Bumped by every metadata/data write; nodes compare it against the
  // generation their cached pages were read under.
  std::uint64_t generation = 0;
  std::map<std::string, int> entries;    // Dirs: name -> inode.
  std::vector<std::string> entry_order;  // Dirs: readdir order.
};

// The shared disk and the on-disk inode table.  Built host-side (mkfs)
// before the workload runs; at run time all access goes through the
// mounting ClusterFsNode instances.
class ClusterVolume {
 public:
  ClusterVolume(osim::Kernel* kernel, osim::SimDisk* disk);

  // mkfs: parents must exist.  Returns the inode id.
  int AddDir(const std::string& path);
  int AddFile(const std::string& path, std::uint64_t size_bytes);

  // Unlocked path walk (host side / already-locked contexts); -1 if
  // absent.
  int ResolvePath(const std::string& path) const;

  int NewInode(bool is_dir);
  std::uint64_t AllocateBlocks(std::uint64_t blocks);

  osim::Shared<ClusterInodeMeta>& meta(int id) {
    return inodes_[static_cast<std::size_t>(id)];
  }
  const osim::Shared<ClusterInodeMeta>& meta(int id) const {
    return inodes_[static_cast<std::size_t>(id)];
  }
  int num_inodes() const { return static_cast<int>(inodes_.size()); }
  osim::SimDisk* disk() const { return disk_; }
  osim::Kernel* kernel() const { return kernel_; }

 private:
  osim::Kernel* kernel_;
  osim::SimDisk* disk_;
  // Deque: references must survive growth (create during suspension).
  std::deque<osim::Shared<ClusterInodeMeta>> inodes_;
  // Bump allocator; every claim is single-turn-atomic (no await between
  // read and advance), so like the fd tables this is deliberately not a
  // Shared cell.
  std::uint64_t next_alloc_ = 64;
};

// One node's mount of a ClusterVolume.
class ClusterFsNode : public Vfs {
 public:
  // Registers this node's downgrade hook with the DLM (flush the
  // inode's dirty pages before surrendering EX).
  ClusterFsNode(ClusterVolume* volume, osnet::Dlm* dlm, int node,
                ClusterFsConfig config = {});

  Task<int> Open(const std::string& path, bool direct_io) override;
  Task<void> Close(int fd) override;
  Task<std::int64_t> Read(int fd, std::uint64_t bytes) override;
  Task<std::int64_t> Write(int fd, std::uint64_t bytes) override;
  Task<std::uint64_t> Llseek(int fd, std::uint64_t pos) override;
  Task<DirentBatch> Readdir(int fd) override;
  Task<void> Fsync(int fd) override;
  Task<int> Create(const std::string& path) override;
  Task<void> Unlink(const std::string& path) override;
  Task<FileAttr> Stat(const std::string& path) override;

  // FoSgen-style instrumentation, like Ext2SimFs: probe names resolve
  // once, at attach time.
  void SetProfiler(SimProfiler* profiler) {
    profiler_ = profiler;
    ResolveProbes();
  }

  PageCache& page_cache() { return cache_; }
  int node() const { return node_; }
  std::uint64_t invalidations() const { return invalidations_; }
  std::uint64_t pages_flushed() const { return pages_flushed_; }

 private:
  struct OpenFile {
    int inode = -1;
    std::uint64_t pos = 0;
    bool in_use = false;
  };

  // Per-node, per-inode local state.  cached_generation is only touched
  // under the inode's i_sem (and the DLM lock), so it needs no cell of
  // its own.
  struct LocalInode {
    std::unique_ptr<osim::SimSemaphore> i_sem;
    std::uint64_t cached_generation = 0;
  };

  struct OpProbes {
    osprof::ProbeHandle open, close, read, readpage, write, llseek,
        readdir, fsync, create, unlink, stat;
  };

  Task<int> OpenImpl(const std::string& path, bool direct_io);
  Task<void> CloseImpl(int fd);
  Task<std::int64_t> ReadImpl(int fd, std::uint64_t bytes);
  Task<std::int64_t> WriteImpl(int fd, std::uint64_t bytes);
  Task<std::uint64_t> LlseekImpl(int fd, std::uint64_t pos);
  Task<DirentBatch> ReaddirImpl(int fd);
  Task<void> FsyncImpl(int fd);
  Task<int> CreateImpl(const std::string& path);
  Task<void> UnlinkImpl(const std::string& path);
  Task<FileAttr> StatImpl(const std::string& path);
  Task<void> ReadPage(int inode, std::uint64_t page,
                      std::uint64_t first_block);
  Task<void> ReadPageImpl(int inode, std::uint64_t page,
                          std::uint64_t first_block);

  // Walks `path` component by component, taking each directory's DLM PR
  // lock and local i_sem around the entry lookup.  Returns -1 if absent.
  Task<int> ResolveLocked(const std::string& path);
  // Like ResolveLocked but stops at the parent; returns {parent, leaf}
  // ({-1, ""} if the parent is absent).
  Task<std::pair<int, std::string>> ResolveParentLocked(
      const std::string& path);

  // Under the inode's DLM lock + i_sem: drop stale clean pages if a
  // foreign write bumped the generation since this node last looked.
  void Revalidate(int inode, LocalInode& li,
                  const ClusterInodeMeta& meta);

  // The DLM downgrade hook: write back the inode's dirty pages.
  Task<void> FlushResource(const std::string& resource);

  template <typename T>
  Task<T> Profiled(osprof::ProbeHandle op, Task<T> inner) {
    if (profiler_ == nullptr) {
      co_return co_await std::move(inner);
    }
    co_return co_await profiler_->Wrap(op, std::move(inner));
  }

  Task<void> CpuNoisy(osim::Cycles cycles);
  void ResolveProbes();
  OpenFile& file(int fd);
  int AllocFd(int inode);
  LocalInode& local(int inode);
  static std::string InodeResource(int inode) {
    return "inode:" + std::to_string(inode);
  }

  osim::Kernel* kernel_;
  ClusterVolume* volume_;
  osnet::Dlm* dlm_;
  int node_;
  ClusterFsConfig config_;
  PageCache cache_;
  SimProfiler* profiler_ = nullptr;
  OpProbes probes_;
  // Deques for reference stability across awaits; the fd allocator is
  // single-turn-atomic (see Ext2SimFs), so not a Shared cell.
  std::deque<OpenFile> fds_;
  std::deque<LocalInode> locals_;
  std::uint64_t invalidations_ = 0;
  std::uint64_t pages_flushed_ = 0;
};

}  // namespace osfs

#endif  // OSPROF_SRC_FS_CLUSTER_FS_H_
