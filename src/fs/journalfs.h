// A journaling file system with the Reiserfs 3.6 write_super pathology
// (paper §6.3, Figure 9).
//
// Reiserfs on Linux 2.4.24 holds a coarse lock while write_super flushes
// the journal; reads contend on the same lock, so every five seconds (the
// metadata flush interval of bdflush) concurrent reads stall for the whole
// journal-commit duration.  JournalFs reproduces this: reads take
// `super_lock_` around their page lookup/submission, and WriteSuper -- run
// by a 5-second daemon -- holds it across a multi-block journal commit.

#ifndef OSPROF_SRC_FS_JOURNALFS_H_
#define OSPROF_SRC_FS_JOURNALFS_H_

#include "src/fs/ext2fs.h"

namespace osfs {

struct JournalConfig {
  // Journal area start and commit size.
  std::uint64_t journal_lba = 2'000'000;
  int commit_pages = 8;
  // Interval between write_super runs (5s at 1.7 GHz).
  osim::Cycles super_interval = static_cast<osim::Cycles>(5.0 * 1.7e9);
  // CPU cost of assembling a commit.
  osim::Cycles commit_cpu = 20'000;
};

class JournalFs : public Ext2SimFs {
 public:
  JournalFs(osim::Kernel* kernel, osim::SimDisk* disk, Ext2Config config = {},
            JournalConfig journal = {});

  // Flushes the superblock + journal while holding the coarse lock.
  // Profiled as "write_super".
  Task<void> WriteSuper();

  // Spawns the flush daemon that calls WriteSuper every super_interval.
  void SpawnSuperDaemon();

  std::uint64_t write_super_count() const {
    return OSIM_SHARED_RO(write_super_count_);
  }
  const osim::SimSemaphore& super_lock() const { return super_lock_; }

 protected:
  // Reads contend with write_super on the coarse lock.
  Task<std::int64_t> ReadImpl(int fd, std::uint64_t bytes) override;

 private:
  Task<void> WriteSuperImpl();

  JournalConfig journal_;
  osim::SimSemaphore super_lock_;
  // Bumped after a commit that spans many awaits; the super_lock_
  // acquire/release pair provides its happens-before cover.
  osim::Shared<std::uint64_t> write_super_count_;
};

}  // namespace osfs

#endif  // OSPROF_SRC_FS_JOURNALFS_H_
