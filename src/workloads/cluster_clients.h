// Cluster FS client workloads (ROADMAP item 4).
//
// Each client opens the shared file on its node's ClusterFsNode mount
// and issues a deterministic mix of llseek + read/write operations.  With
// write_ratio 1.0 and clients on every node, each write's EX acquire
// revokes the peers' cached grants -- the DLM lock ping-pong whose
// profile the cluster_write_shared golden pins down.
//
// Shutdown protocol: the DLM daemons run forever, so the runner spawns
// ClusterControl alongside the clients; every client decrements
// `remaining` when done (single-turn-atomic: decrement and wake in one
// step, no await between -- deliberately not a Shared cell), and the
// controller shuts the DLM down once the count hits zero, letting
// RunUntilThreadsFinish return.

#ifndef OSPROF_SRC_WORKLOADS_CLUSTER_CLIENTS_H_
#define OSPROF_SRC_WORKLOADS_CLUSTER_CLIENTS_H_

#include <cstdint>
#include <string>

#include "src/fs/vfs.h"
#include "src/net/dlm.h"
#include "src/sim/kernel.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace osworkloads {

using osim::Kernel;
using osim::Task;

struct ClusterClientStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

// One client: `iterations` of llseek(random, io_bytes-aligned) followed
// by a write with probability `write_ratio` (else a read) of `io_bytes`,
// with `think_cycles` of user time between operations.  Offsets stay
// within [0, file_bytes), so the file never grows.
Task<void> ClusterClientWorkload(Kernel* kernel, osfs::Vfs* vfs,
                                 std::string path, int iterations,
                                 double write_ratio, std::uint64_t io_bytes,
                                 std::uint64_t file_bytes,
                                 osim::Cycles think_cycles,
                                 std::uint64_t seed,
                                 ClusterClientStats* stats, int* remaining,
                                 osim::WaitQueue* done);

// Waits for `remaining` to reach zero, then stops the DLM daemons.
Task<void> ClusterControl(Kernel* kernel, osnet::Dlm* dlm, int* remaining,
                          osim::WaitQueue* done);

}  // namespace osworkloads

#endif  // OSPROF_SRC_WORKLOADS_CLUSTER_CLIENTS_H_
