#include "src/workloads/cluster_clients.h"

#include <stdexcept>

#include "src/sim/rng.h"

namespace osworkloads {

Task<void> ClusterClientWorkload(Kernel* kernel, osfs::Vfs* vfs,
                                 std::string path, int iterations,
                                 double write_ratio, std::uint64_t io_bytes,
                                 std::uint64_t file_bytes,
                                 osim::Cycles think_cycles,
                                 std::uint64_t seed,
                                 ClusterClientStats* stats, int* remaining,
                                 osim::WaitQueue* done) {
  osim::Rng rng(seed);
  const int fd = co_await vfs->Open(path, /*direct_io=*/false);
  if (fd < 0) {
    throw std::invalid_argument("ClusterClientWorkload: no such file: " +
                                path);
  }
  const std::uint64_t slots =
      file_bytes > io_bytes ? file_bytes / io_bytes : 1;
  for (int i = 0; i < iterations; ++i) {
    co_await kernel->CpuUser(think_cycles);
    const std::uint64_t offset = rng.Below(slots) * io_bytes;
    co_await vfs->Llseek(fd, offset);
    if (rng.Chance(write_ratio)) {
      const std::int64_t n = co_await vfs->Write(fd, io_bytes);
      ++stats->writes;
      stats->bytes_written += static_cast<std::uint64_t>(n > 0 ? n : 0);
    } else {
      const std::int64_t n = co_await vfs->Read(fd, io_bytes);
      ++stats->reads;
      stats->bytes_read += static_cast<std::uint64_t>(n > 0 ? n : 0);
    }
  }
  co_await vfs->Close(fd);
  // Single-turn-atomic join: decrement and wake with no await between.
  --(*remaining);
  if (*remaining == 0) {
    done->WakeAll();
  }
}

Task<void> ClusterControl(Kernel* kernel, osnet::Dlm* dlm, int* remaining,
                          osim::WaitQueue* done) {
  (void)kernel;
  while (*remaining > 0) {
    co_await done->Wait();
  }
  dlm->Shutdown();
}

}  // namespace osworkloads
