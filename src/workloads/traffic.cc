#include "src/workloads/traffic.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/sim/rng.h"

namespace osworkloads {
namespace {

using osim::Cycles;
using osim::Kernel;
using osim::Rng;
using osim::Task;

std::string PoolPath(const TrafficConfig& config, std::uint64_t index) {
  return config.directory + "/t" + std::to_string(index);
}

// Truncated Pareto: floor / U^(1/alpha), capped.  alpha in (1, 2) gives
// the bursty, heavy-tailed gaps of interactive clients.
Cycles ThinkTime(Rng* rng, const TrafficConfig& config) {
  double u = rng->Uniform();
  if (u < 1e-12) {
    u = 1e-12;
  }
  const double think = static_cast<double>(config.think_floor) *
                       std::pow(u, -1.0 / config.think_alpha);
  const double capped =
      std::min(think, static_cast<double>(config.think_cap));
  return static_cast<Cycles>(capped);
}

// One client session: open a pool file, run the request loop with think
// gaps, close, exit.  Owns its config copy -- at million-session scale the
// driver often finishes (and its frame dies) while late sessions drain.
Task<void> Session(Kernel* kernel, osfs::Vfs* vfs, TrafficConfig config,
                   TrafficStats* stats, Rng rng) {
  ++stats->live_sessions;
  stats->peak_live_sessions =
      std::max(stats->peak_live_sessions, stats->live_sessions);
  const int fd = co_await vfs->Open(
      PoolPath(config, rng.Below(static_cast<std::uint64_t>(config.file_pool))),
      false);
  const std::uint64_t read_span =
      config.file_bytes > config.read_chunk
          ? config.file_bytes - config.read_chunk
          : 1;
  for (int r = 0; r < config.requests_per_session; ++r) {
    co_await kernel->Sleep(ThinkTime(&rng, config));
    if (rng.Chance(config.read_fraction)) {
      co_await vfs->Llseek(fd, rng.Below(read_span));
      const std::int64_t got = co_await vfs->Read(fd, config.read_chunk);
      stats->bytes_read += static_cast<std::uint64_t>(got);
      ++stats->reads;
    } else {
      co_await vfs->Llseek(fd, rng.Below(config.file_bytes));
      const std::int64_t put = co_await vfs->Write(fd, config.write_chunk);
      stats->bytes_written += static_cast<std::uint64_t>(put);
      ++stats->writes;
    }
    ++stats->requests_completed;
  }
  co_await vfs->Close(fd);
  --stats->live_sessions;
  ++stats->sessions_finished;
}

}  // namespace

std::uint64_t PlannedRequests(const TrafficConfig& config) {
  std::uint64_t total = 0;
  for (const TrafficPhase& phase : config.phases) {
    total += static_cast<std::uint64_t>(phase.sessions) *
             static_cast<std::uint64_t>(config.requests_per_session);
  }
  return total;
}

void CreateTrafficFiles(osfs::Ext2SimFs* fs, const TrafficConfig& config) {
  fs->AddDir(config.directory);
  for (int f = 0; f < config.file_pool; ++f) {
    fs->AddFile(PoolPath(config, static_cast<std::uint64_t>(f)),
                config.file_bytes);
  }
}

Task<void> OpenLoopTraffic(Kernel* kernel, osfs::Vfs* vfs,
                           TrafficConfig config, TrafficStats* stats) {
  Rng arrivals(config.seed);
  Cycles phase_start = kernel->now();
  for (const TrafficPhase& phase : config.phases) {
    const double slice =
        phase.sessions > 0
            ? static_cast<double>(phase.duration) / phase.sessions
            : 0.0;
    for (int i = 0; i < phase.sessions; ++i) {
      // Stratified arrival: jittered uniformly inside session i's slice.
      // Strictly increasing in i, so the schedule needs no sort.
      const Cycles at =
          phase_start +
          static_cast<Cycles>((i + arrivals.Uniform()) * slice);
      if (at > kernel->now()) {
        co_await kernel->Sleep(at - kernel->now());
      }
      ++stats->sessions_started;
      // Short name: stays inside SSO, no heap churn per session.
      kernel->Spawn("s", Session(kernel, vfs, config, stats,
                                 arrivals.Split()));
    }
    phase_start += phase.duration;
    if (phase_start > kernel->now()) {
      co_await kernel->Sleep(phase_start - kernel->now());
    }
  }
}

}  // namespace osworkloads
