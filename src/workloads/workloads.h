// Workload generators (paper §5-§6).
//
// The paper's profiles come from a handful of deliberately simple
// workloads; these are their simulated counterparts:
//
//  * BuildSourceTree  -- mkfs-time construction of a kernel-source-like
//    file tree (many small files, nested directories, mostly-contiguous
//    allocation).
//  * GrepWorkload     -- `grep -r` over the tree: recursive readdir +
//    stat + open/read/close of every file (§6.2's workload).
//  * RandomReadWorkload -- N processes randomly llseek + read 512 bytes of
//    the same file with O_DIRECT (§6.1's workload).
//  * ZeroByteReadWorkload -- the §3.3 preemption probe: a tight loop of
//    zero-byte reads with a little user-time between them.
//  * CloneWorkload    -- concurrent clone()-like calls contending on the
//    process-table lock (Figure 1).
//  * PostmarkWorkload -- the mail-server create/append/read/delete mix
//    used for the §5.2 overhead measurements.

#ifndef OSPROF_SRC_WORKLOADS_WORKLOADS_H_
#define OSPROF_SRC_WORKLOADS_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fs/ext2fs.h"
#include "src/fs/vfs.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/kernel.h"
#include "src/sim/race_tracker.h"
#include "src/sim/rng.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace osworkloads {

using osim::Cycles;
using osim::Kernel;
using osim::Task;
using osprofilers::SimProfiler;

// --- File tree construction -------------------------------------------------

struct TreeSpec {
  int top_dirs = 12;             // Like the kernel's top-level directories.
  int subdirs_per_dir = 3;
  int depth = 2;                 // Levels of subdirectories below the top.
  int files_per_dir = 18;
  std::uint64_t median_file_bytes = 9'000;
  double file_size_sigma = 1.0;  // Log-normal spread.
  std::uint64_t seed = 1234;
};

struct BuiltTree {
  std::string root;
  std::vector<std::string> directories;
  std::vector<std::string> files;
  std::uint64_t total_bytes = 0;
};

// Builds the tree under `root` (created if missing) at mkfs time.
BuiltTree BuildSourceTree(osfs::Ext2SimFs* fs, const std::string& root,
                          const TreeSpec& spec);

// --- Workload bodies (spawn these as kernel threads) ------------------------

struct GrepStats {
  std::uint64_t files_read = 0;
  std::uint64_t directories_visited = 0;
  std::uint64_t bytes_read = 0;
};

// grep -r: recursively readdir, stat every entry, read every file.
// `per_byte_cpu` models grep's user-time string matching.
Task<void> GrepWorkload(Kernel* kernel, osfs::Vfs* vfs, std::string root,
                        double per_byte_cpu, GrepStats* stats);

// One random-read process of §6.1: `iterations` of llseek(random) +
// read(512) with O_DIRECT on the shared `path`.
Task<void> RandomReadWorkload(Kernel* kernel, osfs::Vfs* vfs, std::string path,
                              int iterations, std::uint64_t seed);

// The §3.3 preemption probe: `requests` zero-byte reads with
// `user_cycles` of user time before each.
Task<void> ZeroByteReadWorkload(Kernel* kernel, osfs::Vfs* vfs,
                                std::string path, std::uint64_t requests,
                                Cycles user_cycles);

// Figure 1: `iterations` clone() calls.  Each clone costs `lock_free_cpu`
// outside and `locked_cpu` inside the process-table lock; latency is
// recorded into `profiler` under "clone".
Task<void> CloneWorkload(Kernel* kernel, osim::SimSemaphore* process_table_lock,
                         SimProfiler* profiler, int iterations,
                         Cycles lock_free_cpu, Cycles locked_cpu,
                         Cycles user_think_cpu);

// --- Postmark (§5.2) --------------------------------------------------------

struct PostmarkConfig {
  int initial_files = 500;
  int transactions = 2'000;
  std::uint64_t min_file_bytes = 512;
  std::uint64_t max_file_bytes = 16'384;
  std::uint64_t read_chunk = 4'096;
  double read_bias = 0.5;    // P(read) vs append in a transaction.
  double create_bias = 0.5;  // P(create) vs delete in a transaction.
  std::uint64_t seed = 7;
  std::string directory = "/postmark";
};

struct PostmarkStats {
  std::uint64_t creates = 0;
  std::uint64_t deletes = 0;
  std::uint64_t reads = 0;
  std::uint64_t appends = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

// Runs the full postmark lifecycle (create pool, transactions, cleanup).
// The directory must already exist as an fs dir (AddDir).
Task<void> PostmarkWorkload(Kernel* kernel, osfs::Vfs* vfs,
                            PostmarkConfig config, PostmarkStats* stats);

// --- SimRace fixtures (src/sim/race_tracker.h) ------------------------------
//
// Tiny workloads whose only purpose is to race -- or, for the locked
// control, to demonstrably not race -- on one osim::Shared cell.  The
// race_fixture_* scenarios seed the gate's [races] true-positive check;
// everything else in the suite must come back clean.

// Lost-update read-modify-write: each round reads the counter, loses the
// CPU across an await, then writes back seen + 1.  Two unsynchronized
// tasks doing this race by construction.  Recorded under op "increment".
Task<void> RaceCounterWorkload(Kernel* kernel, SimProfiler* profiler,
                               osim::Shared<std::uint64_t>* cell, int rounds,
                               Cycles stride);

// One writer republishing the cell each round (op "publish") against
// readers scanning it (op "scan"): the classic unsynchronized
// publish/subscribe write-read race.
Task<void> RacePublishWorkload(Kernel* kernel, SimProfiler* profiler,
                               osim::Shared<std::uint64_t>* cell, int rounds,
                               Cycles stride);
Task<void> RaceScanWorkload(Kernel* kernel, SimProfiler* profiler,
                            osim::Shared<std::uint64_t>* cell, int rounds,
                            Cycles stride);

// The negative control: the same read-modify-write as
// RaceCounterWorkload, but under `lock`.  The acquire/release clock
// chain orders every round, so SimRace must stay silent.
Task<void> RaceLockedWorkload(Kernel* kernel, SimProfiler* profiler,
                              osim::Shared<std::uint64_t>* cell,
                              osim::SimSemaphore* lock, int rounds,
                              Cycles stride);

// --- Compilation (§3.1's non-monotonic workload) ----------------------------

struct CompileConfig {
  // The source tree to "compile" (paths from BuildSourceTree).
  std::vector<std::string> sources;
  std::string output_dir = "/obj";  // Must exist (AddDir).
  // CPU cycles of "compilation" per source byte read.
  double compile_cpu_per_byte = 40.0;
  std::uint64_t object_bytes = 12'288;  // Per-source object file size.
  std::uint64_t binary_bytes = 1u << 20;  // Final link output.
};

struct CompileStats {
  std::uint64_t sources_compiled = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

// A make-like build: per source, read it (I/O phase), burn compile CPU
// (CPU phase), write the object (write phase); finally re-read all
// objects and write the linked binary.  The phases give sampled (3-D)
// profiles their non-monotonic structure (paper §3.1, "Profile sampling").
Task<void> CompileWorkload(Kernel* kernel, osfs::Vfs* vfs,
                           CompileConfig config, CompileStats* stats);

}  // namespace osworkloads

#endif  // OSPROF_SRC_WORKLOADS_WORKLOADS_H_
