#include "src/workloads/workloads.h"

#include <algorithm>

namespace osworkloads {
namespace {

void BuildDirLevel(osfs::Ext2SimFs* fs, const std::string& dir, int level,
                   const TreeSpec& spec, osim::Rng* rng, BuiltTree* out) {
  out->directories.push_back(dir);
  for (int f = 0; f < spec.files_per_dir; ++f) {
    const std::string path = dir + "/f" + std::to_string(f) + ".c";
    const std::uint64_t size = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(rng->LogNormal(
                static_cast<double>(spec.median_file_bytes),
                spec.file_size_sigma)));
    fs->AddFile(path, size);
    out->files.push_back(path);
    out->total_bytes += size;
  }
  // `level` counts directory levels below a top dir; spec.depth of them
  // get subdirectories.
  if (level >= spec.depth) {
    return;
  }
  for (int d = 0; d < spec.subdirs_per_dir; ++d) {
    const std::string sub = dir + "/d" + std::to_string(d);
    fs->AddDir(sub);
    BuildDirLevel(fs, sub, level + 1, spec, rng, out);
  }
}

}  // namespace

BuiltTree BuildSourceTree(osfs::Ext2SimFs* fs, const std::string& root,
                          const TreeSpec& spec) {
  BuiltTree out;
  out.root = root;
  osim::Rng rng(spec.seed);
  // Create the root and any missing intermediate directories.
  std::string prefix;
  std::size_t start = 0;
  while (start < root.size()) {
    const std::size_t slash = root.find('/', start);
    const std::size_t end = slash == std::string::npos ? root.size() : slash;
    if (end > start) {
      prefix += "/" + root.substr(start, end - start);
      if (!fs->Exists(prefix)) {
        fs->AddDir(prefix);
      }
    }
    start = end + 1;
  }
  for (int t = 0; t < spec.top_dirs; ++t) {
    const std::string top = root + "/top" + std::to_string(t);
    fs->AddDir(top);
    BuildDirLevel(fs, top, 0, spec, &rng, &out);
  }
  return out;
}

namespace {

Task<void> GrepDir(Kernel* kernel, osfs::Vfs* vfs, std::string path,
                   double per_byte_cpu, GrepStats* stats) {
  ++stats->directories_visited;
  const int dirfd = co_await vfs->Open(path, /*direct_io=*/false);
  if (dirfd < 0) {
    co_return;
  }
  std::vector<std::string> subdirs;
  std::vector<std::string> files;
  while (true) {
    const osfs::DirentBatch batch = co_await vfs->Readdir(dirfd);
    if (batch.names.empty()) {
      break;  // This call was the past-EOF probe.
    }
    for (const std::string& name : batch.names) {
      const std::string child = path + "/" + name;
      const osfs::FileAttr attr = co_await vfs->Stat(child);
      if (attr.is_dir) {
        subdirs.push_back(child);
      } else {
        files.push_back(child);
      }
    }
  }
  co_await vfs->Close(dirfd);

  for (const std::string& file : files) {
    const int fd = co_await vfs->Open(file, /*direct_io=*/false);
    if (fd < 0) {
      continue;
    }
    std::int64_t got = 0;
    do {
      got = co_await vfs->Read(fd, 4096);
      if (got > 0) {
        stats->bytes_read += static_cast<std::uint64_t>(got);
        // grep's own string matching: user time proportional to data.
        const auto user = static_cast<Cycles>(
            std::max(1.0, per_byte_cpu * static_cast<double>(got)));
        co_await kernel->CpuUser(user);
      }
    } while (got > 0);
    co_await vfs->Close(fd);
    ++stats->files_read;
  }
  for (const std::string& sub : subdirs) {
    co_await GrepDir(kernel, vfs, sub, per_byte_cpu, stats);
  }
}

}  // namespace

Task<void> GrepWorkload(Kernel* kernel, osfs::Vfs* vfs, std::string root,
                        double per_byte_cpu, GrepStats* stats) {
  co_await GrepDir(kernel, vfs, root, per_byte_cpu, stats);
}

Task<void> RandomReadWorkload(Kernel* kernel, osfs::Vfs* vfs, std::string path,
                              int iterations, std::uint64_t seed) {
  osim::Rng rng(seed);
  const int fd = co_await vfs->Open(path, /*direct_io=*/true);
  if (fd < 0) {
    co_return;
  }
  const osfs::FileAttr attr = co_await vfs->Stat(path);
  const std::uint64_t positions = std::max<std::uint64_t>(1, attr.size / 512);
  for (int i = 0; i < iterations; ++i) {
    const std::uint64_t pos = rng.Below(positions) * 512;
    (void)co_await vfs->Llseek(fd, pos);
    (void)co_await vfs->Read(fd, 512);
    // Consume the data: ~10us of jittered application work per iteration,
    // longer than a context switch so a woken competitor genuinely
    // overlaps this process's next I/O (as on real hardware).
    co_await kernel->CpuUser(
        static_cast<Cycles>(17'000 * rng.Uniform(0.5, 1.5)));
  }
  co_await vfs->Close(fd);
}

Task<void> ZeroByteReadWorkload(Kernel* kernel, osfs::Vfs* vfs,
                                std::string path, std::uint64_t requests,
                                Cycles user_cycles) {
  const int fd = co_await vfs->Open(path, /*direct_io=*/false);
  if (fd < 0) {
    co_return;
  }
  for (std::uint64_t i = 0; i < requests; ++i) {
    co_await kernel->CpuUser(user_cycles);
    (void)co_await vfs->Read(fd, 0);
  }
  co_await vfs->Close(fd);
}

namespace {

Task<void> CloneOnce(Kernel* kernel, osim::SimSemaphore* lock,
                     Cycles lock_free_cpu, Cycles locked_cpu) {
  co_await kernel->Cpu(lock_free_cpu);
  co_await lock->Acquire();
  co_await kernel->Cpu(locked_cpu);
  lock->Release();
}

}  // namespace

Task<void> CloneWorkload(Kernel* kernel, osim::SimSemaphore* process_table_lock,
                         SimProfiler* profiler, int iterations,
                         Cycles lock_free_cpu, Cycles locked_cpu,
                         Cycles user_think_cpu) {
  // Resolve the probe once; the loop body records through the handle.
  const osprof::ProbeHandle clone = profiler->Resolve("clone");
  for (int i = 0; i < iterations; ++i) {
    co_await profiler->Wrap(
        clone,
        CloneOnce(kernel, process_table_lock, lock_free_cpu, locked_cpu));
    // Jitter the think time: without it, identical deterministic loop
    // periods phase-lock the processes into a permanent lock convoy,
    // which no real workload exhibits.
    const double jitter = kernel->rng().Uniform(0.5, 1.5);
    co_await kernel->CpuUser(static_cast<Cycles>(
        std::max(1.0, static_cast<double>(user_think_cpu) * jitter)));
  }
}

Task<void> PostmarkWorkload(Kernel* kernel, osfs::Vfs* vfs,
                            PostmarkConfig config, PostmarkStats* stats) {
  osim::Rng rng(config.seed);
  std::vector<std::string> pool;
  int next_id = 0;

  auto make_name = [&config, &next_id] {
    return config.directory + "/pm" + std::to_string(next_id++);
  };
  auto file_size = [&config, &rng] {
    return config.min_file_bytes +
           rng.Below(config.max_file_bytes - config.min_file_bytes + 1);
  };

  auto create_one = [&](std::uint64_t bytes) -> Task<void> {
    const std::string name = make_name();
    const int fd = co_await vfs->Create(name);
    if (fd < 0) {
      co_return;
    }
    std::uint64_t remaining = bytes;
    while (remaining > 0) {
      const std::uint64_t chunk = std::min<std::uint64_t>(remaining, 4096);
      (void)co_await vfs->Write(fd, chunk);
      remaining -= chunk;
      stats->bytes_written += chunk;
    }
    co_await vfs->Close(fd);
    pool.push_back(name);
    ++stats->creates;
  };

  // Phase 1: create the initial pool.
  for (int i = 0; i < config.initial_files; ++i) {
    co_await create_one(file_size());
    co_await kernel->CpuUser(300);
  }

  // Phase 2: transactions.
  for (int t = 0; t < config.transactions && !pool.empty(); ++t) {
    // Half of each transaction: read or append an existing file.  Copy the
    // name: the pool vector may reallocate while this coroutine is
    // suspended inside create_one.
    const std::string victim =
        pool[static_cast<std::size_t>(rng.Below(pool.size()))];
    if (rng.Chance(config.read_bias)) {
      const int fd = co_await vfs->Open(victim, /*direct_io=*/false);
      if (fd >= 0) {
        std::int64_t got = 0;
        do {
          got = co_await vfs->Read(fd, config.read_chunk);
          if (got > 0) {
            stats->bytes_read += static_cast<std::uint64_t>(got);
          }
        } while (got > 0);
        co_await vfs->Close(fd);
        ++stats->reads;
      }
    } else {
      const int fd = co_await vfs->Open(victim, /*direct_io=*/false);
      if (fd >= 0) {
        const osfs::FileAttr attr = co_await vfs->Stat(victim);
        (void)co_await vfs->Llseek(fd, attr.size);
        const std::uint64_t chunk = 512 + rng.Below(4096);
        (void)co_await vfs->Write(fd, chunk);
        stats->bytes_written += chunk;
        co_await vfs->Close(fd);
        ++stats->appends;
      }
    }
    // Other half: create or delete.
    if (rng.Chance(config.create_bias)) {
      co_await create_one(file_size());
    } else if (pool.size() > 1) {
      const std::size_t idx = static_cast<std::size_t>(rng.Below(pool.size()));
      co_await vfs->Unlink(pool[idx]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
      ++stats->deletes;
    }
    co_await kernel->CpuUser(500);
  }

  // Phase 3: cleanup.
  for (const std::string& name : pool) {
    co_await vfs->Unlink(name);
    ++stats->deletes;
  }
  pool.clear();
}

Task<void> CompileWorkload(Kernel* kernel, osfs::Vfs* vfs,
                           CompileConfig config, CompileStats* stats) {
  std::vector<std::string> objects;
  int id = 0;
  // Phase 1 per source: read, compile (user CPU), write the object.
  for (const std::string& source : config.sources) {
    const int fd = co_await vfs->Open(source, false);
    if (fd < 0) {
      continue;
    }
    std::uint64_t source_bytes = 0;
    std::int64_t got = 0;
    do {
      got = co_await vfs->Read(fd, 4096);
      if (got > 0) {
        source_bytes += static_cast<std::uint64_t>(got);
      }
    } while (got > 0);
    co_await vfs->Close(fd);
    stats->bytes_read += source_bytes;

    const auto compile_cpu = static_cast<Cycles>(
        std::max(1.0, config.compile_cpu_per_byte *
                          static_cast<double>(source_bytes)));
    co_await kernel->CpuUser(compile_cpu);

    const std::string object =
        config.output_dir + "/o" + std::to_string(id++) + ".o";
    const int ofd = co_await vfs->Create(object);
    if (ofd >= 0) {
      (void)co_await vfs->Write(ofd, config.object_bytes);
      co_await vfs->Close(ofd);
      objects.push_back(object);
      stats->bytes_written += config.object_bytes;
    }
    ++stats->sources_compiled;
  }
  // Phase 2: link -- re-read every object, write the binary, fsync it.
  for (const std::string& object : objects) {
    const int fd = co_await vfs->Open(object, false);
    if (fd < 0) {
      continue;
    }
    std::int64_t got = 0;
    do {
      got = co_await vfs->Read(fd, 4096);
      if (got > 0) {
        stats->bytes_read += static_cast<std::uint64_t>(got);
      }
    } while (got > 0);
    co_await vfs->Close(fd);
  }
  const int bin = co_await vfs->Create(config.output_dir + "/a.out");
  if (bin >= 0) {
    std::uint64_t remaining = config.binary_bytes;
    while (remaining > 0) {
      const std::uint64_t chunk = std::min<std::uint64_t>(remaining, 4096);
      (void)co_await vfs->Write(bin, chunk);
      remaining -= chunk;
      stats->bytes_written += chunk;
    }
    co_await vfs->Fsync(bin);
    co_await vfs->Close(bin);
  }
}

// --- SimRace fixtures -------------------------------------------------------

namespace {

// The racy core: the await between the read and the write is what makes
// the read-modify-write span scheduler turns and lose updates.
Task<void> RaceIncrementOnce(Kernel* kernel,
                             osim::Shared<std::uint64_t>* cell,
                             Cycles stride) {
  const std::uint64_t seen = OSIM_SHARED_RO(*cell);
  co_await kernel->Cpu(stride);
  OSIM_SHARED_RW(*cell) = seen + 1;
}

Task<void> RacePublishOnce(Kernel* kernel, osim::Shared<std::uint64_t>* cell,
                           int round, Cycles stride) {
  OSIM_SHARED_RW(*cell) = static_cast<std::uint64_t>(round);
  co_await kernel->Cpu(stride);
}

Task<void> RaceScanOnce(Kernel* kernel, osim::Shared<std::uint64_t>* cell,
                        std::uint64_t* acc, Cycles stride) {
  *acc += OSIM_SHARED_RO(*cell);
  co_await kernel->Cpu(stride);
}

Task<void> RaceLockedIncrementOnce(Kernel* kernel,
                                   osim::Shared<std::uint64_t>* cell,
                                   osim::SimSemaphore* lock, Cycles stride) {
  co_await lock->Acquire();
  const std::uint64_t seen = OSIM_SHARED_RO(*cell);
  co_await kernel->Cpu(stride);
  OSIM_SHARED_RW(*cell) = seen + 1;
  lock->Release();
}

}  // namespace

Task<void> RaceCounterWorkload(Kernel* kernel, SimProfiler* profiler,
                               osim::Shared<std::uint64_t>* cell, int rounds,
                               Cycles stride) {
  const osprof::ProbeHandle increment = profiler->Resolve("increment");
  for (int i = 0; i < rounds; ++i) {
    co_await profiler->Wrap(increment,
                            RaceIncrementOnce(kernel, cell, stride));
    co_await kernel->Sleep(stride);
  }
}

Task<void> RacePublishWorkload(Kernel* kernel, SimProfiler* profiler,
                               osim::Shared<std::uint64_t>* cell, int rounds,
                               Cycles stride) {
  const osprof::ProbeHandle publish = profiler->Resolve("publish");
  for (int i = 0; i < rounds; ++i) {
    co_await profiler->Wrap(publish,
                            RacePublishOnce(kernel, cell, i, stride));
    co_await kernel->Sleep(stride);
  }
}

Task<void> RaceScanWorkload(Kernel* kernel, SimProfiler* profiler,
                            osim::Shared<std::uint64_t>* cell, int rounds,
                            Cycles stride) {
  const osprof::ProbeHandle scan = profiler->Resolve("scan");
  std::uint64_t sum = 0;
  for (int i = 0; i < rounds; ++i) {
    co_await profiler->Wrap(scan, RaceScanOnce(kernel, cell, &sum, stride));
    co_await kernel->Sleep(stride);
  }
}

Task<void> RaceLockedWorkload(Kernel* kernel, SimProfiler* profiler,
                              osim::Shared<std::uint64_t>* cell,
                              osim::SimSemaphore* lock, int rounds,
                              Cycles stride) {
  const osprof::ProbeHandle increment = profiler->Resolve("increment");
  for (int i = 0; i < rounds; ++i) {
    co_await profiler->Wrap(
        increment, RaceLockedIncrementOnce(kernel, cell, lock, stride));
    co_await kernel->Sleep(stride);
  }
}

}  // namespace osworkloads
