// Declarative open-loop traffic generation (the scale_1m scenario).
//
// The figure workloads are closed loops: a fixed set of processes issue
// the next request only after the previous one returns, so offered load
// tracks service capacity.  Server profiling needs the opposite regime --
// clients arrive on their own schedule whether or not the system keeps up
// (Schroeder et al., "Open Versus Closed", NSDI 2006).  TrafficConfig
// captures that regime declaratively:
//
//  * an arrival-rate curve (TrafficPhase list: N sessions over D cycles),
//  * client churn: each session opens a file from a shared pool, issues a
//    short request loop, closes and exits,
//  * heavy-tailed think times between requests (truncated Pareto),
//  * a read/write mix over the FS stack.
//
// Arrivals are stratified within each phase: session i of S lands
// uniformly at random inside its own D/S slice, so the inter-arrival
// jitter is random but the session count -- and therefore the total
// request count -- is exact and independent of completions (open loop).
// All randomness flows from TrafficConfig::seed through osim::Rng, so a
// run is reproducible bit-for-bit.

#ifndef OSPROF_SRC_WORKLOADS_TRAFFIC_H_
#define OSPROF_SRC_WORKLOADS_TRAFFIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fs/ext2fs.h"
#include "src/fs/vfs.h"
#include "src/sim/kernel.h"
#include "src/sim/task.h"

namespace osworkloads {

// One segment of the arrival-rate curve: `sessions` clients arrive over
// `duration` cycles.  Back-to-back phases with different ratios express
// ramps, plateaus and bursts.
struct TrafficPhase {
  int sessions = 0;
  osim::Cycles duration = 0;
};

struct TrafficConfig {
  std::vector<TrafficPhase> phases;  // The arrival-rate curve.

  // Session shape (churn): requests issued between open and close.
  int requests_per_session = 100;

  // Request mix.  A request is llseek(random) + read(read_chunk) with
  // probability read_fraction, else llseek(random) + write(write_chunk).
  double read_fraction = 0.875;
  std::uint64_t read_chunk = 4'096;
  std::uint64_t write_chunk = 512;

  // Think time between requests: truncated Pareto,
  // floor / U^(1/alpha) capped at `cap` -- heavy-tailed like interactive
  // clients, but with bounded worst case so phases drain.
  osim::Cycles think_floor = 2'000;
  double think_alpha = 1.3;
  osim::Cycles think_cap = 5'000'000;

  // The shared file pool sessions pick from (built at mkfs time).
  int file_pool = 512;
  std::uint64_t file_bytes = 16'384;
  std::string directory = "/traffic";

  std::uint64_t seed = 99;
};

struct TrafficStats {
  std::uint64_t sessions_started = 0;
  std::uint64_t sessions_finished = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  // Concurrency the open loop actually reached (sessions alive at once).
  std::uint64_t live_sessions = 0;
  std::uint64_t peak_live_sessions = 0;
};

// The request count the curve commits to: sum of phase sessions times
// requests_per_session.  Exact, not an expectation -- arrivals are
// stratified, so every configured session runs.
std::uint64_t PlannedRequests(const TrafficConfig& config);

// mkfs-time construction of the file pool (directory plus
// `file_pool` files of `file_bytes` each).
void CreateTrafficFiles(osfs::Ext2SimFs* fs, const TrafficConfig& config);

// The open-loop driver: spawn as one kernel thread.  It sleeps to each
// arrival time and spawns a session thread per arrival; the kernel drains
// once the curve ends and the last session closes.  Pair with
// KernelConfig::reap_finished at scale -- sessions are born to die.
osim::Task<void> OpenLoopTraffic(osim::Kernel* kernel, osfs::Vfs* vfs,
                                 TrafficConfig config, TrafficStats* stats);

}  // namespace osworkloads

#endif  // OSPROF_SRC_WORKLOADS_TRAFFIC_H_
