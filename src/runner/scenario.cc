#include "src/runner/scenario.h"

#include <stdexcept>
#include <utility>

namespace osrunner {

void ScenarioRegistry::Register(Scenario scenario) {
  if (scenario.name.empty()) {
    throw std::invalid_argument("ScenarioRegistry: scenario name is empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      scenarios_.emplace(scenario.name, std::move(scenario));
  if (!inserted) {
    throw std::invalid_argument("ScenarioRegistry: duplicate scenario '" +
                                it->first + "'");
  }
}

const Scenario* ScenarioRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

std::vector<std::string> ScenarioRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(scenarios_.size());
  for (const auto& [name, scenario] : scenarios_) {
    names.push_back(name);
  }
  return names;
}

namespace {

// Figure 1: four processes cloning concurrently on the dual-CPU SMP box;
// the single-process control for differential analysis rides along.
Scenario Fig01(int processes, std::string name, std::string what) {
  Scenario s;
  s.name = std::move(name);
  s.description = "Figure 1: clone() contention, " + what;
  s.kernel.num_cpus = 2;
  s.kernel.seed = 42;
  CloneSpec clone;
  clone.processes = processes;
  s.workload = clone;
  return s;
}

// Figure 3: the zero-byte read preemption probe at the bench's shrunken
// scale (Q = 2^20, 2 x 5e5 requests).
Scenario Fig03(bool kernel_preemption, std::string name) {
  Scenario s;
  s.name = std::move(name);
  s.description = std::string("Figure 3: zero-byte reads, ") +
                  (kernel_preemption ? "preemptive" : "non-preemptive") +
                  " kernel";
  s.kernel.num_cpus = 1;
  s.kernel.quantum = osim::Cycles{1} << 20;
  s.kernel.kernel_preemption = kernel_preemption;
  s.kernel.seed = 7;
  s.fs.cpu_noise_sigma = 0.15;
  ZeroByteReadSpec probe;
  s.workload = probe;
  return s;
}

// Figure 7's grep -r tree: Linux-2.6.11-ish top level.
GrepSpec Fig07Grep() {
  GrepSpec grep;
  grep.tree.top_dirs = 14;
  grep.tree.subdirs_per_dir = 3;
  grep.tree.depth = 2;
  grep.tree.files_per_dir = 16;
  return grep;
}

Scenario Fig07() {
  Scenario s;
  s.name = "fig07";
  s.description =
      "Figure 7: Ext2 readdir/readpage under grep -r (4-peak profile)";
  s.kernel.num_cpus = 1;
  s.kernel.seed = 2024;
  s.workload = Fig07Grep();
  return s;
}

// The fig07 workload under its layered-decomposition name: identical
// machine and seed, so profiles match fig07's byte for byte, but the name
// advertises what `osprof_tool layers` shows -- which components each of
// the four readdir peaks is made of.
Scenario Fig07ReaddirPeaks() {
  Scenario s = Fig07();
  s.name = "fig07_readdir_peaks";
  s.description =
      "Figure 7's readdir peaks decomposed by layer (self vs driver)";
  return s;
}

Scenario Fig07Driver() {
  Scenario s = Fig07();
  s.name = "fig07_driver";
  s.description =
      "Figure 7 workload with driver-level profiling (Figure 2, lowest "
      "layer)";
  s.profilers.driver = true;
  return s;
}

Scenario Fig07Cifs() {
  Scenario s;
  s.name = "fig07_cifs";
  s.description =
      "Figure 7's grep over a CIFS mount (Figure 10's client-side view)";
  s.kernel.num_cpus = 2;
  s.kernel.seed = 1010;
  GrepSpec grep = Fig07Grep();
  grep.tree.top_dirs = 6;  // Network round-trips dominate; keep it brisk.
  grep.over_cifs = true;
  s.workload = grep;
  return s;
}

Scenario Fig06() {
  Scenario s;
  s.name = "fig06";
  s.description =
      "Figure 6: llseek vs O_DIRECT random reads on the shared i_sem";
  s.kernel.num_cpus = 2;
  s.kernel.seed = 6;
  RandomReadSpec rr;
  rr.iterations = 2000;
  s.workload = rr;
  return s;
}

Scenario Postmark() {
  Scenario s;
  s.name = "postmark";
  s.description = "§5.2: postmark-like mail workload on Ext2";
  s.kernel.seed = 52;
  PostmarkSpec pm;
  pm.config.initial_files = 200;
  pm.config.transactions = 1000;
  s.workload = pm;
  return s;
}

// The million-task scale scenario: >= 1M open-loop requests across 64
// simulated CPUs.  Session churn exercises thread reaping, the arrival
// curve (ramp / plateau / ramp-down) keeps dozens-to-hundreds of sessions
// live at once, and per-CPU profile shards absorb the record traffic.
Scenario Scale1M() {
  Scenario s;
  s.name = "scale_1m";
  s.description =
      "Million-request open-loop traffic on 64 CPUs (sharded profiles, "
      "session reaping)";
  s.kernel.num_cpus = 64;
  s.kernel.seed = 71;
  s.kernel.reap_finished = true;
  s.track_races = false;  // Reaping reuses thread ids; see Scenario.
  s.profilers.per_cpu_shards = true;
  s.profilers.shard_epoch = osim::Cycles{1} << 24;
  TrafficSpec t;
  // 10,500 sessions x 100 requests = 1,050,000 requests, exact by
  // construction (stratified arrivals).
  t.config.phases = {{1500, osim::Cycles{30'000'000}},
                     {7500, osim::Cycles{90'000'000}},
                     {1500, osim::Cycles{30'000'000}}};
  t.config.requests_per_session = 100;
  s.workload = t;
  return s;
}

// The OS-noise scenario (ROADMAP item 3): four always-runnable noise
// tasks on two CPUs under a small quantum, so forced preemption is the
// dominant interference and its measured frequency is large enough to
// validate §3.3 Equation 3 tightly.  Per task: samples * burst cycles of
// CPU under quantum Q = 2^20 predicts samples * burst / Q forced
// preemptions (375 at the defaults); the gate's noise rater checks the
// measured total against that via ExpectedPreemptedRequests.
Scenario Noise() {
  Scenario s;
  s.name = "noise";
  s.description =
      "OS-noise tracer: 4 noise tasks on 2 CPUs, preemption-dominated "
      "(Equation 3 validation)";
  s.kernel.num_cpus = 2;
  s.kernel.quantum = osim::Cycles{1} << 20;
  s.kernel.seed = 33;
  s.profilers.fs = false;  // No file system: the workload is pure CPU.
  s.workload = NoiseSpec{};
  return s;
}

// One task on one CPU: no competition, so no preemption or migration --
// the residual noise is timer-interrupt service alone, the osnoise
// tracer's idle-system baseline.
Scenario NoiseIdle() {
  Scenario s;
  s.name = "noise_idle";
  s.description =
      "OS-noise tracer baseline: 1 task on 1 CPU, timer ticks only";
  s.kernel.num_cpus = 1;
  s.kernel.quantum = osim::Cycles{1} << 20;
  s.kernel.seed = 33;
  s.profilers.fs = false;
  NoiseSpec n;
  n.tasks = 1;
  s.workload = n;
  return s;
}

// The SimRace fixture family.  Two CPUs so racing turns genuinely
// interleave; the fs profiler is off (there is no file system in these
// workloads -- the profiler attaches at the syscall boundary as "user").
Scenario RaceFixture(RaceFixtureSpec::Kind kind, std::string name,
                     std::string what) {
  Scenario s;
  s.name = std::move(name);
  s.description = "SimRace fixture: " + what;
  s.kernel.num_cpus = 2;
  s.kernel.seed = 99;
  s.profilers.fs = false;
  RaceFixtureSpec spec;
  spec.kind = kind;
  spec.tasks = kind == RaceFixtureSpec::Kind::kReaders ? 3 : 2;
  s.workload = spec;
  return s;
}

// The same shape at test scale: seconds of wall clock, not minutes.
Scenario ScaleSmoke() {
  Scenario s;
  s.name = "scale_smoke";
  s.description = "scale_1m's shape at smoke-test size (3,000 requests)";
  s.kernel.num_cpus = 8;
  s.kernel.seed = 71;
  s.kernel.reap_finished = true;
  s.track_races = false;  // Reaping reuses thread ids; see Scenario.
  s.profilers.per_cpu_shards = true;
  s.profilers.shard_epoch = osim::Cycles{1} << 22;
  TrafficSpec t;
  t.config.phases = {{40, osim::Cycles{4'000'000}},
                     {80, osim::Cycles{8'000'000}}};
  t.config.requests_per_session = 25;
  t.config.file_pool = 64;
  s.workload = t;
  return s;
}

// The ROADMAP item 4 cluster: N nodes on one Kernel, one shared file,
// every client on every node hitting it.  cluster_write_shared is the
// DLM ping-pong worst case (pure writes: every EX acquire revokes the
// peer's cached grant and waits out its flush), the attribution test the
// golden's slowest-write-peak >= 80% lock_wait+net criterion pins.
// cluster_read_mostly is the contrast: PR grants shared by all nodes,
// occasionally revoked by a write.
Scenario Cluster(double write_ratio, std::string name, std::string what) {
  Scenario s;
  s.name = std::move(name);
  s.description = "Shared-disk cluster FS over a DLM: " + what;
  ClusterSpec c;
  c.write_ratio = write_ratio;
  s.kernel.num_cpus = 2 * c.nodes;  // Two CPUs per node.
  s.kernel.num_nodes = c.nodes;
  s.kernel.seed = 47;
  s.workload = c;
  return s;
}

}  // namespace

ScenarioRegistry& BuiltinScenarios() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    r->Register(Fig01(4, "fig01", "4 processes on 2 CPUs"));
    r->Register(Fig01(1, "fig01_single",
                      "1 process (differential-analysis control)"));
    r->Register(Fig03(true, "fig03"));
    r->Register(Fig03(false, "fig03_nonpreempt"));
    r->Register(Fig06());
    r->Register(Fig07());
    r->Register(Fig07ReaddirPeaks());
    r->Register(Fig07Driver());
    r->Register(Fig07Cifs());
    r->Register(Postmark());
    r->Register(Noise());
    r->Register(NoiseIdle());
    r->Register(Scale1M());
    r->Register(ScaleSmoke());
    r->Register(RaceFixture(RaceFixtureSpec::Kind::kCounter,
                            "race_fixture_counter",
                            "unsynchronized read-modify-write counter"));
    r->Register(RaceFixture(RaceFixtureSpec::Kind::kReaders,
                            "race_fixture_readers",
                            "unsynchronized publish vs concurrent scans"));
    r->Register(RaceFixture(RaceFixtureSpec::Kind::kLockedControl,
                            "race_control_locked",
                            "the counter under a semaphore (negative "
                            "control: no races)"));
    r->Register(Cluster(1.0, "cluster_write_shared",
                        "2 nodes, shared-write lock ping-pong"));
    r->Register(Cluster(0.1, "cluster_read_mostly",
                        "2 nodes, cached PR grants with occasional "
                        "revoking writes"));
    return r;
  }();
  return *registry;
}

}  // namespace osrunner
