// Declarative scenario specifications for the multi-trial runner.
//
// Every figure/table bench in this repository used to hand-assemble its
// kernel + disk + file system + workload inline and run one seed in one
// thread.  A Scenario captures that assembly declaratively -- kernel,
// disk, fs and net knobs plus the workload and its parameters and a base
// seed -- so the same experiment can be (a) named and looked up in a
// registry, (b) run N times with independent seeds on a thread pool, and
// (c) reproduced exactly from the command line via
// `osprof_tool run <scenario>`.
//
// Scenarios are plain data: building the simulation from one (kernel,
// disk, fs, profilers, workload threads) is the runner's job
// (src/runner/runner.h).

#ifndef OSPROF_SRC_RUNNER_SCENARIO_H_
#define OSPROF_SRC_RUNNER_SCENARIO_H_

#include <map>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "src/fs/cluster_fs.h"
#include "src/fs/ext2fs.h"
#include "src/net/cifs.h"
#include "src/net/dlm.h"
#include "src/net/net.h"
#include "src/sim/disk.h"
#include "src/sim/kernel.h"
#include "src/workloads/traffic.h"
#include "src/workloads/workloads.h"

namespace osrunner {

// Which instrumentation layers a scenario attaches (Figure 2).  The
// syscall/user layer is implied by the workload: clone-style workloads
// record into a SimProfiler labelled "user"; file-system workloads attach
// it as the FoSgen-style in-FS instrumentation labelled "fs".
struct ProfilerSpec {
  bool fs = true;        // SimProfiler at the FS (or syscall) boundary.
  bool driver = false;   // DriverProfiler on the block request stream.
  bool callgraph = false;  // Function-granularity profiler; when set it
                           // replaces the FS-level SimProfiler (collected
                           // under layer "callgraph", flat view).
  int resolution = 1;
  // Per-CPU profile sharding (million-task scale): the SimProfiler records
  // into private per-CPU shards, folded into the base sets every
  // `shard_epoch` cycles (0 = only at collection).  Serialized output is
  // byte-identical to the unsharded profiler for any CPU count or epoch
  // length -- merging is exact integer addition.
  bool per_cpu_shards = false;
  osim::Cycles shard_epoch = 0;
};

// --- Workloads --------------------------------------------------------------

// grep -r over a freshly built kernel-source-like tree (Figures 7/8/10).
// With `over_cifs` the tree lives on a simulated SMB server and the grep
// runs against a CifsMount configured by `cifs` (the net knobs).
struct GrepSpec {
  osworkloads::TreeSpec tree;
  std::string root = "/usr/src/linux";
  double per_byte_cpu = 0.5;
  int processes = 1;
  bool over_cifs = false;
  osnet::CifsConfig cifs;
};

// The §3.3 preemption probe: tight zero-byte read loops (Figure 3).
struct ZeroByteReadSpec {
  std::string path = "/probe";
  std::uint64_t file_bytes = 4096;
  std::uint64_t requests = 500'000;
  osim::Cycles user_cycles = 120;
  int processes = 2;
};

// Random llseek + O_DIRECT read of one shared file (Figure 6).
struct RandomReadSpec {
  std::string path = "/db";
  std::uint64_t file_bytes = std::uint64_t{8} << 20;
  int iterations = 1000;
  int processes = 2;
};

// Concurrent clone() calls contending on the process-table lock
// (Figure 1).  Records at the syscall boundary into layer "user".
struct CloneSpec {
  int processes = 4;
  int iterations = 4000;
  osim::Cycles lock_free_cpu = 4'000;
  osim::Cycles locked_cpu = 2'000;
  osim::Cycles user_think_cpu = 60'000;
};

// The §5.2 postmark-like mail workload.
struct PostmarkSpec {
  osworkloads::PostmarkConfig config;
};

// Open-loop traffic over the FS (the scale_1m scenario): an arrival-rate
// curve spawns short-lived client sessions independent of completions
// (src/workloads/traffic.h).
struct TrafficSpec {
  osworkloads::TrafficConfig config;
};

// The rtla/osnoise-style OS-noise workload: `tasks` clock-reading loops of
// `samples` bursts of `burst` cycles each, with every wall-clock excess
// attributed to its interference source via the InterferenceChannel
// (src/profilers/noise_profiler.h).  The default burst is 3/2 * 2^16 --
// the exact mid-latency of bucket 16 -- so the §3.3 Equation 3 prediction
// computed from the sample histogram carries no bucket-rounding error and
// the gate's noise rater can hold a tight tolerance.
struct NoiseSpec {
  int tasks = 4;
  std::uint64_t samples = 4000;
  osim::Cycles burst = 98'304;
  // Relative |measured - predicted| / predicted the gate's Equation 3
  // rater accepts (the paper reports agreement within a third).
  double eq3_tolerance = 0.25;
};

// SimRace fixture family (src/sim/race_tracker.h): `tasks` coroutines
// hammering one Shared cell.  kCounter and kReaders race by
// construction and seed the gate's [races] true-positive check;
// kLockedControl runs the same access pattern under a semaphore and
// must come back clean.
struct RaceFixtureSpec {
  enum class Kind { kCounter, kReaders, kLockedControl };
  Kind kind = Kind::kCounter;
  int tasks = 2;
  int rounds = 4;
  osim::Cycles stride = 2'000;
};

// The N-node shared-disk cluster (ROADMAP item 4): one ClusterVolume on
// a shared SimDisk, one ClusterFsNode mount per node, clients_per_node
// tasks per node hammering one shared file through the DLM.  The
// scenario's kernel config must partition num_cpus into `nodes` nodes
// (the builders below set kernel.num_nodes = nodes).
struct ClusterSpec {
  int nodes = 2;
  int clients_per_node = 1;
  int iterations = 300;
  double write_ratio = 1.0;        // 1.0 = pure shared-write ping-pong.
  std::string path = "/shared/data";
  std::uint64_t file_bytes = 1 << 20;
  std::uint64_t io_bytes = 16'384;
  osim::Cycles think_cycles = 30'000;
  osnet::NetConfig net;            // The fabric's per-link wire model.
  osnet::DlmConfig dlm;
  osfs::ClusterFsConfig cfs;
};

using WorkloadSpec = std::variant<GrepSpec, ZeroByteReadSpec, RandomReadSpec,
                                  CloneSpec, PostmarkSpec, TrafficSpec,
                                  NoiseSpec, RaceFixtureSpec, ClusterSpec>;

// --- The scenario -----------------------------------------------------------

struct Scenario {
  std::string name;
  std::string description;
  // kernel.seed is the scenario's *base* seed; trial t runs with
  // seed base + t, so trials are independent but the whole run is
  // reproducible from the spec alone.
  osim::KernelConfig kernel;
  osim::DiskConfig disk;
  osfs::Ext2Config fs;
  ProfilerSpec profilers;
  WorkloadSpec workload = GrepSpec{};
  // SimRace happens-before tracking (src/sim/race_tracker.h).  Free in
  // simulated time, so profiles are byte-identical either way; the scale
  // scenarios turn it off because thread reaping reuses ids faster than
  // the per-task clocks can follow (and their hot paths should skip
  // token capture anyway).
  bool track_races = true;
};

// --- Registry ---------------------------------------------------------------

class ScenarioRegistry {
 public:
  // Registers a scenario under its name; throws std::invalid_argument on an
  // empty name or a duplicate.
  void Register(Scenario scenario);

  // Returns the scenario named `name`, or nullptr.  The pointer stays valid
  // for the registry's lifetime (scenarios are never removed).
  const Scenario* Find(const std::string& name) const;

  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Scenario> scenarios_;
};

// The process-wide registry, pre-populated with the built-in figure
// scenarios (fig01, fig01_single, fig03, fig03_nonpreempt, fig07,
// fig07_cifs, ...).
ScenarioRegistry& BuiltinScenarios();

}  // namespace osrunner

#endif  // OSPROF_SRC_RUNNER_SCENARIO_H_
