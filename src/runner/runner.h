// The parallel multi-trial scenario runner.
//
// OSprof profiles are cheap to collect but noisy to interpret from a
// single run: scheduling, seek ordering and cache state move mass between
// adjacent buckets (the paper separates signal from this noise by
// repetition, and §3.4 recommends sharded collection precisely so
// concurrent captures can be merged afterwards).  The runner executes N
// independently-seeded trials of one Scenario -- each trial a fully
// private simulated machine (Kernel + disk + fs + workload threads) -- on
// a pool of J worker threads, then:
//
//  * merges the per-trial ProfileSets layer by layer with
//    ProfileSet::Merge (associative + commutative, and applied in trial
//    order, so the merged totals are bit-identical for any J);
//  * reports cross-trial dispersion: per-bucket min/median/max counts and
//    a peak-stability score (in how many trials does the operation show
//    the same number of peaks as it does most often?).
//
// Profiles are collected through the ProfilerSink interface, so the
// runner is indifferent to which layer (user / fs / driver / callgraph)
// produced them.

#ifndef OSPROF_SRC_RUNNER_RUNNER_H_
#define OSPROF_SRC_RUNNER_RUNNER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/layered.h"
#include "src/core/profile.h"
#include "src/runner/scenario.h"

namespace osrunner {

struct RunOptions {
  int trials = 1;
  // Worker threads; <= 0 selects std::thread::hardware_concurrency().
  int jobs = 1;
};

// One trial's complete output.
struct TrialResult {
  int trial = 0;
  std::uint64_t seed = 0;           // Kernel seed actually used (base + trial).
  osprof::Cycles sim_cycles = 0;    // Simulated end time.
  double wall_seconds = 0.0;        // Host wall clock spent on this trial.
  // layer tag -> profiles collected at that layer via ProfilerSink.
  std::map<std::string, osprof::ProfileSet> layers;
  // layer tag -> layered decomposition (self/fs/driver/net/lock/runq
  // cycles per bucket), for sinks that expose one via CollectLayered().
  std::map<std::string, osprof::LayeredProfileSet> layered;
  // Scalar workload/kernel statistics ("files_read", "acquisitions",
  // "contended_acquisitions", "forced_preemptions", "context_switches", ...).
  std::map<std::string, std::uint64_t> counters;
  // Lock-order analysis (src/sim/lock_order.h): one description per
  // deadlock-capable cycle observed in this trial's lock graph.
  std::vector<std::string> lock_cycles;
  // SimRace analysis (src/sim/race_tracker.h): one description per
  // deduped data race observed in this trial.
  std::vector<std::string> race_reports;
};

// Cross-trial dispersion of one operation's histogram.
struct OpDispersion {
  std::string op;
  int first_bucket = -1;  // Non-empty range of the merged histogram.
  int last_bucket = -1;
  // Per-bucket statistics over the per-trial counts, indexed from
  // first_bucket (size last_bucket - first_bucket + 1, empty if no data).
  std::vector<std::uint64_t> min_count;
  std::vector<std::uint64_t> median_count;
  std::vector<std::uint64_t> max_count;
  // Peak stability: FindPeaks per trial; modal_peak_count is the most
  // common peak count and stable_peak_trials how many trials show it.
  int modal_peak_count = 0;
  int stable_peak_trials = 0;
};

struct LayerResult {
  osprof::ProfileSet merged;
  std::vector<OpDispersion> dispersion;  // One entry per operation.
  // Merged layered decomposition (empty when the layer's sink exposes
  // none).  Merged in trial order like `merged`, so bit-identical for any
  // jobs value.
  osprof::LayeredProfileSet layered;
};

struct RunResult {
  std::string scenario;
  RunOptions options;
  std::vector<TrialResult> trials;              // Indexed by trial number.
  std::map<std::string, LayerResult> layers;    // layer tag -> merged view.
  double wall_seconds = 0.0;                    // Whole run, host wall clock.

  // Sum of one counter over all trials (0 if absent everywhere).
  std::uint64_t TotalCounter(const std::string& name) const;

  // Union of the trials' lock-order cycles, deduplicated and sorted.
  // Empty means no trial observed a deadlock-capable acquisition order.
  std::vector<std::string> LockCycles() const;

  // Union of the trials' SimRace reports, deduplicated and sorted.
  // Empty means no trial observed a happens-before violation.
  std::vector<std::string> RaceReports() const;
};

// Runs a single trial synchronously (seed = scenario.kernel.seed + trial).
TrialResult RunTrial(const Scenario& scenario, int trial);

// Runs options.trials trials on options.jobs worker threads and merges.
// Throws std::invalid_argument on a non-positive trial count; workload
// exceptions propagate (the first one raised, by trial order).
RunResult RunScenario(const Scenario& scenario, const RunOptions& options);

// Human-readable dispersion table for one layer (the runner's report
// counterpart to RenderAscii for single profiles).
std::string RenderDispersion(const LayerResult& layer, int trials);

}  // namespace osrunner

#endif  // OSPROF_SRC_RUNNER_RUNNER_H_
