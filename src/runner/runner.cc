#include "src/runner/runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/core/clock.h"
#include "src/core/peaks.h"
#include "src/net/fabric.h"
#include "src/profilers/callgraph_profiler.h"
#include "src/profilers/noise_profiler.h"
#include "src/profilers/profiler_sink.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/sync.h"
#include "src/workloads/cluster_clients.h"

namespace osrunner {
namespace {

// Lower median of an unsorted column (consistent with cluster.cc's outlier
// consensus).
std::uint64_t LowerMedian(std::vector<std::uint64_t> values) {
  const std::size_t mid = (values.size() - 1) / 2;
  std::nth_element(values.begin(),
                   values.begin() + static_cast<std::ptrdiff_t>(mid),
                   values.end());
  return values[mid];
}

std::vector<OpDispersion> ComputeDispersion(
    const osprof::ProfileSet& merged, const std::vector<TrialResult>& trials,
    const std::string& layer) {
  std::vector<OpDispersion> out;
  for (const std::string& op : merged.OperationNames()) {
    const osprof::Histogram& mh = merged.Find(op)->histogram();
    OpDispersion d;
    d.op = op;
    d.first_bucket = mh.FirstNonEmpty();
    d.last_bucket = mh.LastNonEmpty();

    // Per-trial histograms for this operation (absent -> empty).
    std::vector<const osprof::Histogram*> per_trial;
    per_trial.reserve(trials.size());
    for (const TrialResult& t : trials) {
      const auto it = t.layers.find(layer);
      const osprof::Profile* p =
          it == t.layers.end() ? nullptr : it->second.Find(op);
      per_trial.push_back(p == nullptr ? nullptr : &p->histogram());
    }

    if (d.first_bucket >= 0) {
      const int width = d.last_bucket - d.first_bucket + 1;
      d.min_count.resize(static_cast<std::size_t>(width));
      d.median_count.resize(static_cast<std::size_t>(width));
      d.max_count.resize(static_cast<std::size_t>(width));
      std::vector<std::uint64_t> column(trials.size());
      for (int b = d.first_bucket; b <= d.last_bucket; ++b) {
        for (std::size_t t = 0; t < per_trial.size(); ++t) {
          column[t] = per_trial[t] == nullptr ? 0 : per_trial[t]->bucket(b);
        }
        const std::size_t i = static_cast<std::size_t>(b - d.first_bucket);
        d.min_count[i] = *std::min_element(column.begin(), column.end());
        d.max_count[i] = *std::max_element(column.begin(), column.end());
        d.median_count[i] = LowerMedian(column);
      }
    }

    // Peak stability across trials.
    std::map<int, int> peak_counts;
    for (const osprof::Histogram* h : per_trial) {
      const int n =
          h == nullptr ? 0 : static_cast<int>(osprof::FindPeaks(*h).size());
      ++peak_counts[n];
    }
    for (const auto& [n, occurrences] : peak_counts) {
      // Highest occurrence wins; ties resolve to the smaller peak count
      // (map order), keeping the report deterministic.
      if (occurrences > d.stable_peak_trials) {
        d.stable_peak_trials = occurrences;
        d.modal_peak_count = n;
      }
    }
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace

std::uint64_t RunResult::TotalCounter(const std::string& name) const {
  std::uint64_t sum = 0;
  for (const TrialResult& t : trials) {
    const auto it = t.counters.find(name);
    if (it != t.counters.end()) {
      sum += it->second;
    }
  }
  return sum;
}

std::vector<std::string> RunResult::LockCycles() const {
  std::set<std::string> unique;
  for (const TrialResult& t : trials) {
    unique.insert(t.lock_cycles.begin(), t.lock_cycles.end());
  }
  return {unique.begin(), unique.end()};
}

std::vector<std::string> RunResult::RaceReports() const {
  std::set<std::string> unique;
  for (const TrialResult& t : trials) {
    unique.insert(t.race_reports.begin(), t.race_reports.end());
  }
  return {unique.begin(), unique.end()};
}

TrialResult RunTrial(const Scenario& scenario, int trial) {
  const osprof::WallTimer timer;
  TrialResult result;
  result.trial = trial;

  osim::KernelConfig kcfg = scenario.kernel;
  kcfg.seed = scenario.kernel.seed + static_cast<std::uint64_t>(trial);
  result.seed = kcfg.seed;

  // A fully private simulated machine per trial: trials share nothing, so
  // they can run on concurrent host threads.
  osim::Kernel kernel(kcfg);
  // Lock-order analysis rides along on every trial: tracking consumes no
  // simulated time, so profiles are byte-identical with it on.
  kernel.lock_order().set_enabled(true);
  // SimRace happens-before tracking: same zero-simulated-time contract
  // (src/sim/race_tracker.h); scale scenarios opt out via the spec.
  kernel.races().set_enabled(scenario.track_races);
  osim::SimDisk disk(&kernel, scenario.disk);
  osfs::Ext2SimFs fs(&kernel, &disk, scenario.fs);

  const int resolution = scenario.profilers.resolution;
  osprofilers::SimProfiler sim_profiler(&kernel, resolution);
  std::optional<osprofilers::CallGraphProfiler> callgraph;
  if (scenario.profilers.callgraph) {
    callgraph.emplace(&kernel, resolution);
  }
  std::optional<osprofilers::DriverProfiler> driver;
  if (scenario.profilers.driver) {
    driver.emplace(&kernel, &disk, resolution);
  }
  std::optional<osprofilers::NoiseProfiler> noise;

  std::vector<osprofilers::ProfilerSink*> sinks;
  // In-FS instrumentation: the call-graph profiler takes precedence over
  // the flat SimProfiler, mirroring Ext2SimFs::Profiled.
  auto attach_fs_instrumentation = [&] {
    if (callgraph.has_value()) {
      fs.SetCallGraphProfiler(&*callgraph);
      sinks.push_back(&*callgraph);
    } else if (scenario.profilers.fs) {
      fs.SetProfiler(&sim_profiler);
      sinks.push_back(&sim_profiler);
    }
  };

  // Long-lived workload state; must survive until the simulation finishes.
  std::optional<osnet::CifsMount> cifs;
  std::optional<osim::SimSemaphore> clone_lock;
  std::optional<osim::Shared<std::uint64_t>> race_cell;
  std::vector<osworkloads::GrepStats> grep_stats;
  osworkloads::PostmarkStats postmark_stats;
  osworkloads::TrafficStats traffic_stats;
  std::optional<osnet::Fabric> fabric;
  std::optional<osnet::Dlm> dlm;
  std::optional<osfs::ClusterVolume> cluster_volume;
  std::vector<std::unique_ptr<osfs::ClusterFsNode>> cluster_mounts;
  std::vector<osworkloads::ClusterClientStats> cluster_stats;
  int cluster_remaining = 0;
  std::optional<osim::WaitQueue> cluster_done;

  if (const auto* grep = std::get_if<GrepSpec>(&scenario.workload)) {
    osworkloads::BuildSourceTree(&fs, grep->root, grep->tree);
    osfs::Vfs* target = &fs;
    if (grep->over_cifs) {
      cifs.emplace(&kernel, &fs, grep->cifs);
      target = &*cifs;
      if (scenario.profilers.fs) {
        // Client-side CIFS layer (what Figure 10 profiles).
        sim_profiler.set_layer("cifs");
        cifs->SetProfiler(&sim_profiler);
        sinks.push_back(&sim_profiler);
      }
    } else {
      attach_fs_instrumentation();
    }
    grep_stats.resize(static_cast<std::size_t>(grep->processes));
    for (int p = 0; p < grep->processes; ++p) {
      kernel.Spawn("grep" + std::to_string(p),
                   osworkloads::GrepWorkload(
                       &kernel, target, grep->root, grep->per_byte_cpu,
                       &grep_stats[static_cast<std::size_t>(p)]));
    }
  } else if (const auto* probe =
                 std::get_if<ZeroByteReadSpec>(&scenario.workload)) {
    fs.AddFile(probe->path, probe->file_bytes);
    attach_fs_instrumentation();
    for (int p = 0; p < probe->processes; ++p) {
      kernel.Spawn("proc" + std::to_string(p),
                   osworkloads::ZeroByteReadWorkload(&kernel, &fs, probe->path,
                                                     probe->requests,
                                                     probe->user_cycles));
    }
  } else if (const auto* rr = std::get_if<RandomReadSpec>(&scenario.workload)) {
    fs.AddFile(rr->path, rr->file_bytes);
    attach_fs_instrumentation();
    for (int p = 0; p < rr->processes; ++p) {
      kernel.Spawn("proc" + std::to_string(p),
                   osworkloads::RandomReadWorkload(
                       &kernel, &fs, rr->path, rr->iterations,
                       kcfg.seed + 1'000'003u * static_cast<std::uint64_t>(p)));
    }
  } else if (const auto* clone = std::get_if<CloneSpec>(&scenario.workload)) {
    // Syscall-boundary recording, like the paper's user-level profiler.
    sim_profiler.set_layer("user");
    sinks.push_back(&sim_profiler);
    clone_lock.emplace(&kernel, 1, "proc_table");
    for (int p = 0; p < clone->processes; ++p) {
      kernel.Spawn("proc" + std::to_string(p),
                   osworkloads::CloneWorkload(
                       &kernel, &*clone_lock, &sim_profiler, clone->iterations,
                       clone->lock_free_cpu, clone->locked_cpu,
                       clone->user_think_cpu));
    }
  } else if (const auto* pm = std::get_if<PostmarkSpec>(&scenario.workload)) {
    osworkloads::PostmarkConfig pcfg = pm->config;
    pcfg.seed += static_cast<std::uint64_t>(trial);
    fs.AddDir(pcfg.directory);
    attach_fs_instrumentation();
    kernel.Spawn("postmark", osworkloads::PostmarkWorkload(&kernel, &fs, pcfg,
                                                           &postmark_stats));
  } else if (const auto* traffic = std::get_if<TrafficSpec>(&scenario.workload)) {
    osworkloads::TrafficConfig tcfg = traffic->config;
    tcfg.seed += static_cast<std::uint64_t>(trial);
    osworkloads::CreateTrafficFiles(&fs, tcfg);
    attach_fs_instrumentation();
    kernel.Spawn("traffic", osworkloads::OpenLoopTraffic(&kernel, &fs, tcfg,
                                                         &traffic_stats));
  } else if (const auto* race =
                 std::get_if<RaceFixtureSpec>(&scenario.workload)) {
    // Syscall-boundary recording so the race reports carry op names.
    sim_profiler.set_layer("user");
    sinks.push_back(&sim_profiler);
    race_cell.emplace(kernel, "fixture.cell");
    if (race->kind == RaceFixtureSpec::Kind::kLockedControl) {
      clone_lock.emplace(&kernel, 1, "fixture_lock");
    }
    for (int p = 0; p < race->tasks; ++p) {
      osim::Task<void> body = [&]() -> osim::Task<void> {
        switch (race->kind) {
          case RaceFixtureSpec::Kind::kReaders:
            // Task 0 publishes; the rest scan.
            if (p == 0) {
              return osworkloads::RacePublishWorkload(
                  &kernel, &sim_profiler, &*race_cell, race->rounds,
                  race->stride);
            }
            return osworkloads::RaceScanWorkload(&kernel, &sim_profiler,
                                                 &*race_cell, race->rounds,
                                                 race->stride);
          case RaceFixtureSpec::Kind::kLockedControl:
            return osworkloads::RaceLockedWorkload(
                &kernel, &sim_profiler, &*race_cell, &*clone_lock,
                race->rounds, race->stride);
          case RaceFixtureSpec::Kind::kCounter:
            break;
        }
        return osworkloads::RaceCounterWorkload(&kernel, &sim_profiler,
                                                &*race_cell, race->rounds,
                                                race->stride);
      }();
      kernel.Spawn("racer" + std::to_string(p), std::move(body));
    }
  } else if (const auto* cl = std::get_if<ClusterSpec>(&scenario.workload)) {
    if (kernel.num_nodes() != cl->nodes) {
      throw std::invalid_argument(
          "RunTrial: ClusterSpec.nodes must match kernel.num_nodes");
    }
    fabric.emplace(&kernel, cl->net);
    dlm.emplace(&kernel, &*fabric, cl->dlm);
    cluster_volume.emplace(&kernel, &disk);
    // mkfs: every parent directory of the shared path, then the file.
    std::string prefix;
    std::size_t pos = 1;
    for (std::size_t slash = cl->path.find('/', pos);
         slash != std::string::npos; slash = cl->path.find('/', pos)) {
      prefix = cl->path.substr(0, slash);
      cluster_volume->AddDir(prefix);
      pos = slash + 1;
    }
    cluster_volume->AddFile(cl->path, cl->file_bytes);
    if (scenario.profilers.fs) {
      // One profiler across all mounts: the cluster-wide view, with each
      // op still node-tagged through the interference channel.
      sim_profiler.set_layer("cluster");
      sinks.push_back(&sim_profiler);
    }
    // Mounts after the DLM exists: the ctor registers the node's
    // downgrade hook (the pre-grant flush that makes revokes coherent).
    for (int n = 0; n < cl->nodes; ++n) {
      cluster_mounts.push_back(std::make_unique<osfs::ClusterFsNode>(
          &*cluster_volume, &*dlm, n, cl->cfs));
      if (scenario.profilers.fs) {
        cluster_mounts.back()->SetProfiler(&sim_profiler);
      }
    }
    dlm->Start();
    cluster_remaining = cl->nodes * cl->clients_per_node;
    cluster_done.emplace(&kernel);
    cluster_stats.resize(static_cast<std::size_t>(cluster_remaining));
    for (int n = 0; n < cl->nodes; ++n) {
      for (int c = 0; c < cl->clients_per_node; ++c) {
        const int index = n * cl->clients_per_node + c;
        kernel.SpawnOn(
            n, "client" + std::to_string(n) + "." + std::to_string(c),
            osworkloads::ClusterClientWorkload(
                &kernel, cluster_mounts[static_cast<std::size_t>(n)].get(),
                cl->path, cl->iterations, cl->write_ratio, cl->io_bytes,
                cl->file_bytes, cl->think_cycles,
                kcfg.seed + 7'919u * static_cast<std::uint64_t>(index),
                &cluster_stats[static_cast<std::size_t>(index)],
                &cluster_remaining, &*cluster_done));
      }
    }
    kernel.Spawn("cluster_ctl",
                 osworkloads::ClusterControl(&kernel, &*dlm,
                                             &cluster_remaining,
                                             &*cluster_done));
  } else if (const auto* ns = std::get_if<NoiseSpec>(&scenario.workload)) {
    // The noise profiler subscribes to the kernel's interference channel;
    // its tasks are the workload.
    noise.emplace(&kernel, resolution);
    for (int i = 0; i < ns->tasks; ++i) {
      kernel.Spawn("noise" + std::to_string(i),
                   noise->NoiseTask(i, ns->samples, ns->burst));
    }
    sinks.push_back(&*noise);
  } else {
    throw std::logic_error("RunTrial: unhandled workload variant");
  }

  if (driver.has_value()) {
    sinks.push_back(&*driver);
  }

  // Per-CPU sharded recording: enabling after all probes attach is fine --
  // existing ops are replayed into the shards and later Resolve() calls
  // propagate, so the order is immaterial to the serialized output.
  if (scenario.profilers.per_cpu_shards) {
    sim_profiler.EnableSharding(scenario.profilers.shard_epoch);
  }

  kernel.RunUntilThreadsFinish();

  result.sim_cycles = kernel.now();
  for (const osprofilers::ProfilerSink* sink : sinks) {
    osprofilers::Collected collected =
        sink->Collect(osprofilers::CollectRequest{});
    result.layers.emplace(sink->layer(), std::move(collected.profiles));
    if (collected.layered != nullptr && !collected.layered->empty()) {
      result.layered.emplace(sink->layer(), *collected.layered);
    }
  }

  result.counters["context_switches"] = kernel.context_switches();
  result.counters["timer_interrupts"] = kernel.timer_interrupts_delivered();
  result.counters["forced_preemptions"] = kernel.total_forced_preemptions();
  if (!grep_stats.empty()) {
    for (const osworkloads::GrepStats& s : grep_stats) {
      result.counters["files_read"] += s.files_read;
      result.counters["directories_visited"] += s.directories_visited;
      result.counters["bytes_read"] += s.bytes_read;
    }
  }
  if (clone_lock.has_value()) {
    result.counters["acquisitions"] = clone_lock->acquisitions();
    result.counters["contended_acquisitions"] =
        clone_lock->contended_acquisitions();
  }
  if (std::holds_alternative<PostmarkSpec>(scenario.workload)) {
    result.counters["creates"] = postmark_stats.creates;
    result.counters["deletes"] = postmark_stats.deletes;
    result.counters["reads"] = postmark_stats.reads;
    result.counters["appends"] = postmark_stats.appends;
  }
  if (std::holds_alternative<ClusterSpec>(scenario.workload)) {
    for (const osworkloads::ClusterClientStats& s : cluster_stats) {
      result.counters["reads"] += s.reads;
      result.counters["writes"] += s.writes;
      result.counters["bytes_read"] += s.bytes_read;
      result.counters["bytes_written"] += s.bytes_written;
    }
    result.counters["dlm_acquires"] = dlm->acquires();
    result.counters["dlm_cache_hits"] = dlm->cache_hits();
    result.counters["dlm_remote_requests"] = dlm->remote_requests();
    result.counters["dlm_queued_waits"] = dlm->queued_waits();
    result.counters["dlm_basts"] = dlm->basts_sent();
    result.counters["dlm_downgrades"] = dlm->downgrades();
    result.counters["net_messages"] = fabric->messages_sent();
    result.counters["net_bytes"] = fabric->bytes_sent();
    for (const auto& mount : cluster_mounts) {
      result.counters["cache_invalidations"] += mount->invalidations();
      result.counters["pages_flushed"] += mount->pages_flushed();
    }
  }
  if (noise.has_value()) {
    result.counters["noise_samples"] = noise->TotalSamples();
    result.counters["noise_runtime_cycles"] = noise->TotalRuntime();
    result.counters["noise_cycles"] = noise->TotalNoise();
    result.counters["noise_max_single"] = noise->MaxSingle();
    result.counters["noise_preemptions"] = noise->TotalPreemptions();
    result.counters["noise_migrations"] = noise->TotalMigrations();
    result.counters["noise_timer_ticks"] = noise->TotalTimerTicks();
    result.counters["noise_stolen_cycles"] = noise->TotalStolen();
    result.counters["noise_runq_cycles"] = noise->TotalRunQueue();
    result.counters["noise_lock_handoffs"] = noise->TotalLockHandoffs();
  }
  if (std::holds_alternative<TrafficSpec>(scenario.workload)) {
    result.counters["sessions"] = traffic_stats.sessions_finished;
    result.counters["requests"] = traffic_stats.requests_completed;
    result.counters["reads"] = traffic_stats.reads;
    result.counters["writes"] = traffic_stats.writes;
    result.counters["bytes_read"] = traffic_stats.bytes_read;
    result.counters["bytes_written"] = traffic_stats.bytes_written;
    result.counters["peak_live_sessions"] = traffic_stats.peak_live_sessions;
    // The kernel's own memory accounting, so scale benches can check the
    // simulator heap without host RSS noise.
    const osim::KernelMemoryStats mem = kernel.MemoryStats();
    result.counters["spawned_threads"] = mem.spawned_threads;
    result.counters["reaped_threads"] = mem.reaped_threads;
    result.counters["run_queue_peak"] = mem.run_queue_peak_depth;
    result.counters["sim_heap_bytes"] = mem.TotalBytes();
    if (scenario.profilers.per_cpu_shards && sim_profiler.shards() != nullptr) {
      result.counters["shard_flushes"] = sim_profiler.shards()->flushes();
    }
  }

  result.lock_cycles = kernel.lock_order().CycleDescriptions();
  if (scenario.track_races) {
    const osim::RaceTracker& races = kernel.races();
    result.race_reports = races.ReportDescriptions();
    result.counters["race_reports"] = races.report_count();
    result.counters["race_racy_accesses"] = races.racy_accesses();
    result.counters["race_accesses_checked"] = races.accesses_checked();
    result.counters["race_cells_tracked"] = races.cells_tracked();
  }

  result.wall_seconds = timer.Seconds();
  return result;
}

RunResult RunScenario(const Scenario& scenario, const RunOptions& options) {
  if (options.trials <= 0) {
    throw std::invalid_argument("RunScenario: trials must be positive");
  }
  const osprof::WallTimer timer;

  int jobs = options.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  jobs = std::min(jobs, options.trials);

  RunResult result;
  result.scenario = scenario.name;
  result.options = options;
  result.options.jobs = jobs;
  result.trials.resize(static_cast<std::size_t>(options.trials));

  // Work-stealing over the trial indices; results land in their slot, so
  // neither the claim order nor the worker count affects the output.
  std::atomic<int> next{0};
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(options.trials));
  auto worker = [&] {
    for (int i;
         (i = next.fetch_add(1, std::memory_order_relaxed)) < options.trials;) {
      try {
        result.trials[static_cast<std::size_t>(i)] = RunTrial(scenario, i);
      } catch (...) {
        errors[static_cast<std::size_t>(i)] = std::current_exception();
      }
    }
  };
  if (jobs == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int j = 0; j < jobs; ++j) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  for (const std::exception_ptr& e : errors) {
    if (e != nullptr) {
      std::rethrow_exception(e);
    }
  }

  // Merge layer by layer, in trial order: ProfileSet::Merge is associative
  // and commutative, so the totals are identical for any jobs value; the
  // fixed order makes them bit-identical trivially.
  for (const TrialResult& t : result.trials) {
    for (const auto& [layer, set] : t.layers) {
      if (result.layers.find(layer) == result.layers.end()) {
        result.layers.emplace(
            layer,
            LayerResult{osprof::ProfileSet(set.resolution()),
                        {},
                        osprof::LayeredProfileSet(set.resolution())});
      }
    }
  }
  for (const TrialResult& t : result.trials) {
    for (auto& [layer, lr] : result.layers) {
      const auto it = t.layers.find(layer);
      if (it != t.layers.end()) {
        lr.merged.Merge(it->second);
      }
      const auto lit = t.layered.find(layer);
      if (lit != t.layered.end()) {
        lr.layered.Merge(lit->second);
      }
    }
  }
  for (auto& [layer, lr] : result.layers) {
    lr.dispersion = ComputeDispersion(lr.merged, result.trials, layer);
  }

  result.wall_seconds = timer.Seconds();
  return result;
}

std::string RenderDispersion(const LayerResult& layer, int trials) {
  std::ostringstream os;
  // Heaviest operations first: the paper's profile preprocessing order.
  for (const std::string& op : layer.merged.ByTotalLatency()) {
    const auto it =
        std::find_if(layer.dispersion.begin(), layer.dispersion.end(),
                     [&op](const OpDispersion& d) { return d.op == op; });
    if (it == layer.dispersion.end() || it->first_bucket < 0) {
      continue;
    }
    const OpDispersion& d = *it;
    char head[160];
    std::snprintf(head, sizeof(head),
                  "%s: %d peak(s) in %d/%d trials; buckets %d..%d\n",
                  d.op.c_str(), d.modal_peak_count, d.stable_peak_trials,
                  trials, d.first_bucket, d.last_bucket);
    os << head;
    os << "  bucket        min     median        max     merged\n";
    const osprof::Histogram& mh = layer.merged.Find(op)->histogram();
    for (int b = d.first_bucket; b <= d.last_bucket; ++b) {
      if (mh.bucket(b) == 0) {
        continue;
      }
      const std::size_t i = static_cast<std::size_t>(b - d.first_bucket);
      char line[160];
      std::snprintf(line, sizeof(line), "  %6d %10llu %10llu %10llu %10llu\n",
                    b, static_cast<unsigned long long>(d.min_count[i]),
                    static_cast<unsigned long long>(d.median_count[i]),
                    static_cast<unsigned long long>(d.max_count[i]),
                    static_cast<unsigned long long>(mh.bucket(b)));
      os << line;
    }
  }
  return os.str();
}

}  // namespace osrunner
