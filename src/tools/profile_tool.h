// The osprof post-processing tool (paper §4, "Representing results": the
// scripts that generate formatted text views and gnuplot scripts, check
// consistency, and run the automated analysis).
//
// Exposed as a library function so the CLI stays a thin shim and the
// whole tool is unit-testable.  Subcommands:
//
//   osprof_tool render  <set.prof> [op]           ASCII plots
//   osprof_tool rank    <set.prof>                ops by total latency
//   osprof_tool peaks   <set.prof> <op>           peak report + hypotheses
//   osprof_tool compare <a.prof> <b.prof> [--method <name>]
//                                                 automated analysis (§3.2)
//   osprof_tool gnuplot <set.prof> <op>           gnuplot script to stdout
//   osprof_tool check   <set.prof>                checksum verification
//
// Profile-set files are the text format ProfileSet::Serialize emits (the
// /proc-style reporting interface).

#ifndef OSPROF_SRC_TOOLS_PROFILE_TOOL_H_
#define OSPROF_SRC_TOOLS_PROFILE_TOOL_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace ostools {

// Runs one tool invocation; `args` excludes argv[0].  Returns the process
// exit code (0 success, 1 usage error, 2 bad input).
int RunProfileTool(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err);

}  // namespace ostools

#endif  // OSPROF_SRC_TOOLS_PROFILE_TOOL_H_
