#include "src/tools/gate_command.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/core/analysis.h"
#include "src/core/compare.h"
#include "src/core/histogram.h"
#include "src/core/jsonw.h"
#include "src/core/layered.h"
#include "src/core/preemption.h"
#include "src/core/profile.h"
#include "src/runner/runner.h"
#include "src/runner/scenario.h"

namespace ostools {
namespace {

constexpr const char* kGateUsage =
    "usage: osprof_tool gate <scenario> [--baseline=PREFIX]\n"
    "                        [--raters=emd,chi2,ops,latency]\n"
    "                        [--threshold=X] [--trials=N] [--jobs=J]\n"
    "                        [--json=FILE] [--update]\n"
    "       osprof_tool gate --list\n"
    "  --baseline=PREFIX  golden files PREFIX.<layer>.prof and the layered\n"
    "                     decomposition PREFIX.layers (default\n"
    "                     tests/golden/<scenario>)\n"
    "  --raters=...       comma list of emd, chi2, ops, latency (default\n"
    "                     all four)\n"
    "  --threshold=X      override every rater's default threshold\n"
    "  --trials=N         runner trials; must match how the golden was\n"
    "                     generated (default 1)\n"
    "  --jobs=J           worker threads (does not affect merged output)\n"
    "  --json=FILE        write the machine-readable verdict to FILE\n"
    "  --no-races         disable SimRace happens-before tracking (profiles\n"
    "                     are byte-identical either way; this skips the\n"
    "                     [races] verdict)\n"
    "  --update           regenerate the golden files from this run\n";

// The §5.3 raters the gate scores with, in their CLI spelling.
struct Rater {
  std::string name;                  // CLI token ("emd", "chi2", ...).
  osprof::CompareMethod method;
};

std::optional<Rater> RaterByName(const std::string& name) {
  if (name == "emd") {
    return Rater{name, osprof::CompareMethod::kEarthMovers};
  }
  if (name == "chi2") {
    return Rater{name, osprof::CompareMethod::kChiSquare};
  }
  if (name == "ops") {
    return Rater{name, osprof::CompareMethod::kTotalOps};
  }
  if (name == "latency") {
    return Rater{name, osprof::CompareMethod::kTotalLatency};
  }
  return std::nullopt;
}

std::optional<std::string> FlagValue(const std::string& arg,
                                     const std::string& prefix) {
  if (arg.rfind(prefix, 0) != 0) {
    return std::nullopt;
  }
  return arg.substr(prefix.size());
}

struct GateFlags {
  std::string scenario;
  std::string baseline_prefix;  // Empty -> tests/golden/<scenario>.
  std::vector<Rater> raters;
  double threshold = -1.0;      // < 0 -> per-method default.
  osrunner::RunOptions run;
  std::string json_path;
  bool update = false;
  bool list = false;
  bool no_races = false;
};

// Returns nullopt (and prints to err) on a usage error.
std::optional<GateFlags> ParseFlags(const std::vector<std::string>& args,
                                    std::ostream& err) {
  GateFlags flags;
  for (const std::string& arg : args) {
    if (arg == "--list") {
      flags.list = true;
    } else if (arg == "--update") {
      flags.update = true;
    } else if (arg == "--no-races") {
      flags.no_races = true;
    } else if (const auto v = FlagValue(arg, "--baseline=")) {
      flags.baseline_prefix = *v;
    } else if (const auto v = FlagValue(arg, "--json=")) {
      flags.json_path = *v;
    } else if (const auto v = FlagValue(arg, "--raters=")) {
      std::stringstream tokens(*v);
      std::string token;
      while (std::getline(tokens, token, ',')) {
        const auto rater = RaterByName(token);
        if (!rater) {
          err << "osprof_tool gate: unknown rater '" << token
              << "' (raters: emd, chi2, ops, latency)\n";
          return std::nullopt;
        }
        flags.raters.push_back(*rater);
      }
    } else if (const auto v = FlagValue(arg, "--threshold=")) {
      try {
        flags.threshold = std::stod(*v);
      } catch (const std::exception&) {
        err << "osprof_tool gate: bad --threshold value '" << *v << "'\n";
        return std::nullopt;
      }
    } else if (const auto v = FlagValue(arg, "--trials=")) {
      try {
        flags.run.trials = std::stoi(*v);
      } catch (const std::exception&) {
        err << "osprof_tool gate: bad --trials value '" << *v << "'\n";
        return std::nullopt;
      }
    } else if (const auto v = FlagValue(arg, "--jobs=")) {
      try {
        flags.run.jobs = std::stoi(*v);
      } catch (const std::exception&) {
        err << "osprof_tool gate: bad --jobs value '" << *v << "'\n";
        return std::nullopt;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      err << "osprof_tool gate: unknown flag '" << arg << "'\n" << kGateUsage;
      return std::nullopt;
    } else if (flags.scenario.empty()) {
      flags.scenario = arg;
    } else {
      err << kGateUsage;
      return std::nullopt;
    }
  }
  if (!flags.list && flags.scenario.empty()) {
    err << kGateUsage;
    return std::nullopt;
  }
  if (!flags.list && flags.run.trials <= 0) {
    err << "osprof_tool gate: --trials must be positive\n";
    return std::nullopt;
  }
  if (flags.raters.empty()) {
    for (const char* name : {"emd", "chi2", "ops", "latency"}) {
      flags.raters.push_back(*RaterByName(name));
    }
  }
  if (flags.baseline_prefix.empty()) {
    flags.baseline_prefix = "tests/golden/" + flags.scenario;
  }
  return flags;
}

// One rater's verdict on one layer.
struct RaterVerdict {
  std::string rater;
  std::string method;
  double threshold = 0.0;
  double max_score = 0.0;
  std::vector<std::string> flagged_ops;  // Interesting pairs = regressions.
  bool pass() const { return flagged_ops.empty(); }
};

RaterVerdict ScoreLayer(const Rater& rater, double threshold_override,
                        const osprof::ProfileSet& golden,
                        const osprof::ProfileSet& measured) {
  osprof::AnalysisOptions options;
  options.method = rater.method;
  options.score_threshold = threshold_override >= 0.0
                                ? threshold_override
                                : osprof::DefaultThreshold(rater.method);
  const osprof::AnalysisReport analysis =
      osprof::CompareProfileSets(golden, measured, options);
  RaterVerdict verdict;
  verdict.rater = rater.name;
  verdict.method = osprof::CompareMethodName(rater.method);
  verdict.threshold = options.score_threshold;
  for (const osprof::PairReport& pair : analysis.pairs) {
    if (pair.score > verdict.max_score) {
      verdict.max_score = pair.score;
    }
    if (pair.interesting) {
      verdict.flagged_ops.push_back(pair.op_name);
    }
  }
  return verdict;
}

struct LayerVerdict {
  std::string layer;
  std::string baseline_path;
  std::uint64_t golden_ops = 0;
  std::uint64_t measured_ops = 0;
  std::vector<RaterVerdict> raters;
  bool pass() const {
    for (const RaterVerdict& r : raters) {
      if (!r.pass()) {
        return false;
      }
    }
    return true;
  }
};

// The exact-decomposition verdict: the sim is deterministic, so the merged
// layered decomposition must reproduce the committed `.layers` golden to
// the cycle.  Scored as relative differences so the JSON stays informative
// when drift does happen.
struct LayersVerdict {
  bool checked = false;          // False when no layer recorded one.
  std::string baseline_path;
  double max_rel_diff = 0.0;
  std::uint64_t mismatch_total = 0;
  std::vector<std::string> mismatches;  // Listing capped at 10 entries.
  bool pass() const { return mismatch_total == 0; }
};

double RelDiff(std::uint64_t a, std::uint64_t b) {
  if (a == b) {
    return 0.0;
  }
  const std::uint64_t hi = std::max(a, b);
  const std::uint64_t diff = a > b ? a - b : b - a;
  return static_cast<double>(diff) / static_cast<double>(hi);
}

LayersVerdict ScoreLayersDecomposition(
    const std::map<std::string, osprof::LayeredProfileSet>& golden,
    const std::map<std::string, osprof::LayeredProfileSet>& measured,
    std::string baseline_path) {
  LayersVerdict v;
  v.checked = true;
  v.baseline_path = std::move(baseline_path);
  auto note = [&v](std::string msg, double rel) {
    ++v.mismatch_total;
    v.max_rel_diff = std::max(v.max_rel_diff, rel);
    if (v.mismatches.size() < 10) {
      v.mismatches.push_back(std::move(msg));
    }
  };
  for (const auto& [layer, gset] : golden) {
    if (measured.find(layer) == measured.end()) {
      note("layer " + layer + " only in golden", 1.0);
    }
  }
  for (const auto& [layer, mset] : measured) {
    const auto git = golden.find(layer);
    if (git == golden.end()) {
      note("layer " + layer + " only in measured", 1.0);
      continue;
    }
    const osprof::LayeredProfileSet& gset = git->second;
    for (const auto& [op, gprofile] : gset) {
      if (!gprofile.empty() && mset.Find(op) == nullptr) {
        note(layer + "/" + op + " only in golden", 1.0);
      }
    }
    for (const auto& [op, mprofile] : mset) {
      if (mprofile.empty()) {
        continue;
      }
      const osprof::LayeredProfile* gprofile = gset.Find(op);
      if (gprofile == nullptr) {
        note(layer + "/" + op + " only in measured", 1.0);
        continue;
      }
      // Union of the sparse bucket keys, compared field by field.  Both
      // views are materialized by value (LayeredProfile::buckets() returns
      // a temporary map).
      std::map<int, osprof::LayeredBucket> gb = gprofile->buckets();
      for (const auto& [bucket, mdata] : mprofile.buckets()) {
        const std::string where =
            layer + "/" + op + " bucket " + std::to_string(bucket);
        const auto bit = gb.find(bucket);
        if (bit == gb.end()) {
          note(where + " only in measured", 1.0);
          continue;
        }
        const osprof::LayeredBucket gdata = bit->second;
        gb.erase(bit);
        if (gdata.count != mdata.count) {
          note(where + ": count " + std::to_string(gdata.count) + " vs " +
                   std::to_string(mdata.count),
               RelDiff(gdata.count, mdata.count));
        }
        for (int c = 0; c < osprof::kNumLayerComponents; ++c) {
          if (gdata.cycles[c] != mdata.cycles[c]) {
            note(where + ": " +
                     osprof::LayerComponentName(
                         static_cast<osprof::LayerComponent>(c)) +
                     " " + std::to_string(gdata.cycles[c]) + " vs " +
                     std::to_string(mdata.cycles[c]),
                 RelDiff(gdata.cycles[c], mdata.cycles[c]));
          }
        }
      }
      for (const auto& [bucket, gdata] : gb) {
        note(layer + "/" + op + " bucket " + std::to_string(bucket) +
                 " only in golden",
             1.0);
      }
    }
  }
  return v;
}

// The §3.3 Equation 3 rater, checked only for noise scenarios: every
// sample is one burst of NoiseSpec::burst CPU cycles, so a synthetic
// histogram with all tasks * samples * trials records in the burst's
// bucket feeds Equation 3's sum n_b * mid(b) / Q directly.  The default
// burst is bucket 16's exact mid-latency, which makes the prediction free
// of bucket-rounding error and lets the tolerance stay tight.
struct NoiseVerdict {
  bool checked = false;  // False unless the workload is a NoiseSpec.
  double predicted = 0.0;
  double measured = 0.0;
  double rel_err = 0.0;
  double tolerance = 0.0;
  bool pass() const { return !checked || rel_err <= tolerance; }
};

NoiseVerdict ScoreNoiseEquation3(const osrunner::Scenario& scenario,
                                 const osrunner::RunResult& result,
                                 int trials) {
  NoiseVerdict v;
  const auto* ns = std::get_if<osrunner::NoiseSpec>(&scenario.workload);
  if (ns == nullptr) {
    return v;
  }
  v.checked = true;
  v.tolerance = ns->eq3_tolerance;
  // Equation 3's preemption term assumes a competitor is waiting; the sim
  // (like a real scheduler) re-dispatches a quantum-expired thread when
  // the run queue is empty.  With no CPU oversubscription the model
  // therefore predicts zero forced preemptions.
  if (ns->tasks > scenario.kernel.num_cpus) {
    osprof::Histogram samples;
    samples.set_bucket(
        osprof::BucketIndex(ns->burst),
        static_cast<std::uint64_t>(ns->tasks) * ns->samples *
            static_cast<std::uint64_t>(trials));
    v.predicted = osprof::ExpectedPreemptedRequests(
        samples, static_cast<double>(scenario.kernel.quantum));
  }
  v.measured = static_cast<double>(result.TotalCounter("noise_preemptions"));
  if (v.predicted > 0.0) {
    v.rel_err = std::abs(v.measured - v.predicted) / v.predicted;
  } else if (v.measured > 0.0) {
    v.rel_err = 1.0;  // Preemptions where the model predicts none.
  }
  return v;
}

// The SimRace verdict (src/sim/race_tracker.h).  Ordinary scenarios must
// come back race-free; the seeded race_fixture_* family must race --
// that is the gate's true-positive check on the detector itself.
struct RacesVerdict {
  bool checked = false;   // False under --no-races / untracked scenarios.
  bool expected = false;  // race_fixture_*: races are the point.
  std::vector<std::string> reports;
  bool pass() const {
    if (!checked) {
      return true;
    }
    return expected ? !reports.empty() : reports.empty();
  }
};

osjson::Value VerdictJson(const GateFlags& flags,
                          const std::vector<LayerVerdict>& layers,
                          const LayersVerdict& layered,
                          const NoiseVerdict& noise,
                          const std::vector<std::string>& lock_cycles,
                          const RacesVerdict& races, bool pass) {
  osjson::Value doc = osjson::Value::Object();
  doc.Set("schema", osjson::Value::Str("osprof-gate-v1"));
  doc.Set("scenario", osjson::Value::Str(flags.scenario));
  doc.Set("baseline", osjson::Value::Str(flags.baseline_prefix));
  doc.Set("trials", osjson::Value::Int(flags.run.trials));
  doc.Set("pass", osjson::Value::Bool(pass));
  osjson::Value lock_order = osjson::Value::Object();
  lock_order.Set("deadlock_capable", osjson::Value::Bool(!lock_cycles.empty()));
  osjson::Value cycle_array = osjson::Value::Array();
  for (const std::string& cycle : lock_cycles) {
    cycle_array.Append(osjson::Value::Str(cycle));
  }
  lock_order.Set("cycles", std::move(cycle_array));
  doc.Set("lock_order", std::move(lock_order));
  osjson::Value races_obj = osjson::Value::Object();
  races_obj.Set("checked", osjson::Value::Bool(races.checked));
  races_obj.Set("expected", osjson::Value::Bool(races.expected));
  races_obj.Set("found", osjson::Value::Bool(!races.reports.empty()));
  osjson::Value report_array = osjson::Value::Array();
  for (const std::string& report : races.reports) {
    report_array.Append(osjson::Value::Str(report));
  }
  races_obj.Set("reports", std::move(report_array));
  races_obj.Set("pass", osjson::Value::Bool(races.pass()));
  doc.Set("races", std::move(races_obj));
  osjson::Value layer_array = osjson::Value::Array();
  for (const LayerVerdict& layer : layers) {
    osjson::Value l = osjson::Value::Object();
    l.Set("layer", osjson::Value::Str(layer.layer));
    l.Set("baseline", osjson::Value::Str(layer.baseline_path));
    l.Set("golden_ops", osjson::Value::Uint(layer.golden_ops));
    l.Set("measured_ops", osjson::Value::Uint(layer.measured_ops));
    l.Set("pass", osjson::Value::Bool(layer.pass()));
    osjson::Value rater_array = osjson::Value::Array();
    for (const RaterVerdict& r : layer.raters) {
      osjson::Value entry = osjson::Value::Object();
      entry.Set("rater", osjson::Value::Str(r.rater));
      entry.Set("method", osjson::Value::Str(r.method));
      entry.Set("threshold", osjson::Value::Double(r.threshold));
      entry.Set("max_score", osjson::Value::Double(r.max_score));
      osjson::Value flagged = osjson::Value::Array();
      for (const std::string& op : r.flagged_ops) {
        flagged.Append(osjson::Value::Str(op));
      }
      entry.Set("flagged_ops", std::move(flagged));
      entry.Set("pass", osjson::Value::Bool(r.pass()));
      rater_array.Append(std::move(entry));
    }
    l.Set("raters", std::move(rater_array));
    layer_array.Append(std::move(l));
  }
  doc.Set("layers", std::move(layer_array));
  osjson::Value ld = osjson::Value::Object();
  ld.Set("checked", osjson::Value::Bool(layered.checked));
  ld.Set("baseline", osjson::Value::Str(layered.baseline_path));
  ld.Set("pass", osjson::Value::Bool(layered.pass()));
  ld.Set("max_rel_diff", osjson::Value::Double(layered.max_rel_diff));
  ld.Set("mismatch_count", osjson::Value::Uint(layered.mismatch_total));
  osjson::Value mismatch_array = osjson::Value::Array();
  for (const std::string& m : layered.mismatches) {
    mismatch_array.Append(osjson::Value::Str(m));
  }
  ld.Set("mismatches", std::move(mismatch_array));
  doc.Set("layered", std::move(ld));
  osjson::Value nv = osjson::Value::Object();
  nv.Set("checked", osjson::Value::Bool(noise.checked));
  nv.Set("predicted_preemptions", osjson::Value::Double(noise.predicted));
  nv.Set("measured_preemptions", osjson::Value::Double(noise.measured));
  nv.Set("rel_err", osjson::Value::Double(noise.rel_err));
  nv.Set("tolerance", osjson::Value::Double(noise.tolerance));
  nv.Set("pass", osjson::Value::Bool(noise.pass()));
  doc.Set("noise", std::move(nv));
  return doc;
}

}  // namespace

int RunGateCommand(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err) {
  const auto flags = ParseFlags(args, err);
  if (!flags) {
    return 1;
  }
  const osrunner::ScenarioRegistry& registry = osrunner::BuiltinScenarios();
  if (flags->list) {
    for (const std::string& name : registry.Names()) {
      out << "  " << name << "\n";
    }
    return 0;
  }
  const osrunner::Scenario* scenario = registry.Find(flags->scenario);
  if (scenario == nullptr) {
    err << "osprof_tool gate: unknown scenario '" << flags->scenario << "'\n";
    return 2;
  }

  // --no-races runs the identical scenario with SimRace off: profiles and
  // goldens are byte-identical either way (the drift CI loop checks both).
  osrunner::Scenario gated = *scenario;
  if (flags->no_races) {
    gated.track_races = false;
  }

  osrunner::RunResult result;
  try {
    result = osrunner::RunScenario(gated, flags->run);
  } catch (const std::exception& e) {
    err << "osprof_tool gate: " << e.what() << "\n";
    return 2;
  }

  RacesVerdict races;
  races.checked = gated.track_races;
  races.expected = flags->scenario.rfind("race_fixture_", 0) == 0;
  races.reports = result.RaceReports();

  // The merged layered decomposition, for the exactness check and
  // --update (empty when no instrumented layer recorded one).
  std::map<std::string, osprof::LayeredProfileSet> measured_layers;
  for (const auto& [layer, lr] : result.layers) {
    if (!lr.layered.empty()) {
      measured_layers.emplace(layer, lr.layered);
    }
  }

  if (flags->update) {
    for (const auto& [layer, lr] : result.layers) {
      const std::string path =
          flags->baseline_prefix + "." + layer + ".prof";
      std::ofstream file(path);
      if (!file) {
        err << "osprof_tool gate: cannot write " << path << "\n";
        return 2;
      }
      lr.merged.Serialize(file);
      out << "updated " << path << " (" << lr.merged.size()
          << " ops, trials=" << flags->run.trials << ")\n";
    }
    if (!measured_layers.empty()) {
      const std::string path = flags->baseline_prefix + ".layers";
      std::ofstream file(path);
      if (!file) {
        err << "osprof_tool gate: cannot write " << path << "\n";
        return 2;
      }
      osprof::SerializeLayers(measured_layers, file);
      out << "updated " << path << " (" << measured_layers.size()
          << " layers, trials=" << flags->run.trials << ")\n";
    }
    return 0;
  }

  std::vector<LayerVerdict> layers;
  for (const auto& [layer, lr] : result.layers) {
    LayerVerdict verdict;
    verdict.layer = layer;
    verdict.baseline_path = flags->baseline_prefix + "." + layer + ".prof";
    std::ifstream file(verdict.baseline_path);
    if (!file) {
      err << "osprof_tool gate: missing baseline " << verdict.baseline_path
          << " (generate it with: osprof_tool gate " << flags->scenario
          << " --baseline=" << flags->baseline_prefix << " --trials="
          << flags->run.trials << " --update)\n";
      return 2;
    }
    osprof::ProfileSet golden;
    try {
      golden = osprof::ProfileSet::Parse(file);
    } catch (const std::exception& e) {
      err << "osprof_tool gate: corrupt baseline " << verdict.baseline_path
          << ": " << e.what() << "\n";
      return 2;
    }
    verdict.golden_ops = golden.TotalOperations();
    verdict.measured_ops = lr.merged.TotalOperations();
    for (const Rater& rater : flags->raters) {
      verdict.raters.push_back(
          ScoreLayer(rater, flags->threshold, golden, lr.merged));
    }
    layers.push_back(std::move(verdict));
  }

  const NoiseVerdict noise =
      ScoreNoiseEquation3(*scenario, result, flags->run.trials);

  LayersVerdict layered;
  layered.baseline_path = flags->baseline_prefix + ".layers";
  if (!measured_layers.empty()) {
    std::ifstream file(layered.baseline_path);
    if (!file) {
      err << "osprof_tool gate: missing baseline " << layered.baseline_path
          << " (generate it with: osprof_tool gate " << flags->scenario
          << " --baseline=" << flags->baseline_prefix << " --trials="
          << flags->run.trials << " --update)\n";
      return 2;
    }
    std::map<std::string, osprof::LayeredProfileSet> golden_layers;
    try {
      golden_layers = osprof::ParseLayers(file);
    } catch (const std::exception& e) {
      err << "osprof_tool gate: corrupt baseline " << layered.baseline_path
          << ": " << e.what() << "\n";
      return 2;
    }
    layered = ScoreLayersDecomposition(golden_layers, measured_layers,
                                       layered.baseline_path);
  }

  bool pass = true;
  out << "gate " << flags->scenario << ": " << scenario->description << "\n";
  // Lock-order assertion: a deadlock-capable acquisition-order cycle in
  // any trial fails the gate even when every profile rater passes.
  const std::vector<std::string> lock_cycles = result.LockCycles();
  if (lock_cycles.empty()) {
    out << "[lock-order] no deadlock-capable cycles\n";
  } else {
    pass = false;
    out << "[lock-order] DEADLOCK-CAPABLE lock graph:\n";
    for (const std::string& cycle : lock_cycles) {
      out << "  " << cycle << "\n";
    }
  }
  // SimRace assertion: ordinary scenarios must be race-free; the seeded
  // race_fixture_* family must race (true-positive check on the detector).
  if (!races.checked) {
    out << "[races] tracking disabled; skipped\n";
  } else if (races.expected) {
    if (races.pass()) {
      out << "[races] fixture raced as designed:\n";
      for (const std::string& report : races.reports) {
        out << "  " << report << "\n";
      }
    } else {
      pass = false;
      out << "[races] FIXTURE SILENT: expected data races, found none\n";
    }
  } else if (races.pass()) {
    out << "[races] no data races\n";
  } else {
    pass = false;
    out << "[races] DATA RACES:\n";
    for (const std::string& report : races.reports) {
      out << "  " << report << "\n";
    }
  }
  for (const LayerVerdict& layer : layers) {
    out << "[" << layer.layer << "] golden " << layer.golden_ops
        << " ops vs measured " << layer.measured_ops << " ops ("
        << layer.baseline_path << ")\n";
    for (const RaterVerdict& r : layer.raters) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "  %-8s (%-13s) threshold %-7.3g max score %-9.4g %s\n",
                    r.rater.c_str(), r.method.c_str(), r.threshold,
                    r.max_score, r.pass() ? "PASS" : "REGRESSION");
      out << line;
      for (const std::string& op : r.flagged_ops) {
        out << "           flagged: " << op << "\n";
      }
      pass = pass && r.pass();
    }
  }
  // Layered-decomposition exactness: deterministic sim, so the merged
  // decomposition must match the `.layers` golden to the cycle.
  if (!layered.checked) {
    out << "[layers] no layered data recorded; skipped\n";
  } else if (layered.pass()) {
    out << "[layers] decomposition matches " << layered.baseline_path
        << " exactly\n";
  } else {
    pass = false;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "[layers] DECOMPOSITION DRIFT vs %s (%llu mismatches, "
                  "max rel diff %.4g):\n",
                  layered.baseline_path.c_str(),
                  static_cast<unsigned long long>(layered.mismatch_total),
                  layered.max_rel_diff);
    out << line;
    for (const std::string& m : layered.mismatches) {
      out << "  " << m << "\n";
    }
    if (layered.mismatch_total > layered.mismatches.size()) {
      out << "  ... ("
          << layered.mismatch_total - layered.mismatches.size()
          << " more)\n";
    }
  }
  // Equation 3 (§3.3) on noise scenarios: the measured forced-preemption
  // count must agree with the model's prediction from the sample budget.
  if (noise.checked) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "[noise] Eq.3 predicted %.1f forced preemptions, measured "
                  "%.0f (rel err %.4f, tolerance %.2f) %s\n",
                  noise.predicted, noise.measured, noise.rel_err,
                  noise.tolerance, noise.pass() ? "PASS" : "REGRESSION");
    out << line;
    pass = pass && noise.pass();
  }
  out << (pass ? "gate PASS" : "gate REGRESSION") << "\n";

  if (!flags->json_path.empty()) {
    std::ofstream json(flags->json_path);
    if (!json) {
      err << "osprof_tool gate: cannot write " << flags->json_path << "\n";
      return 2;
    }
    json << VerdictJson(*flags, layers, layered, noise, lock_cycles, races,
                        pass)
                .Dump();
    out << "wrote " << flags->json_path << "\n";
  }
  return pass ? 0 : 3;
}

}  // namespace ostools
