// FoSgen: automatic file-system instrumentation (paper §4).
//
// The paper's FoSgen (607 lines of perl) instruments any Linux/FreeBSD
// file system in four steps: (1) scan the sources for VFS operation
// vectors, (2) insert latency-calculation macros into the operation
// functions' bodies -- FSPROF_PRE(op) at entry and FSPROF_POST(op) at
// every return point, transforming `return foo(x);` into
//
//   {
//     f_type tmp_return_variable = foo(x);
//     FSPROF_POST(op);
//     return tmp_return_variable;
//   }
//
// (3) include the macro header, and (4) wrap generic kernel functions
// (e.g. Ext2's use of generic_read_dir) with local instrumented wrappers.
//
// This is the C++ analogue, operating on a single translation unit of
// C-like source.  It understands the `op: func` (GNU) and `.op = func`
// (C99) initializer styles shown in the paper's Figure 4, counts braces
// to find function bodies, and uses a built-in VFS signature table to
// synthesize wrappers for functions not defined in the unit.

#ifndef OSPROF_SRC_TOOLS_FOSGEN_H_
#define OSPROF_SRC_TOOLS_FOSGEN_H_

#include <string>
#include <vector>

namespace ostools {

struct FosgenResult {
  std::string source;  // The instrumented translation unit.
  // Operations whose local implementations were instrumented, as
  // "op:function" pairs.
  std::vector<std::string> instrumented;
  // Generic (extern) functions that got local wrappers, as "op:function".
  std::vector<std::string> wrapped;
  // Total number of FSPROF_PRE/FSPROF_POST insertions.
  int insertions = 0;
};

// Instruments one source file.  Idempotent: a file that already contains
// FSPROF_ macros is returned unchanged.
FosgenResult FosgenInstrument(const std::string& source);

}  // namespace ostools

#endif  // OSPROF_SRC_TOOLS_FOSGEN_H_
