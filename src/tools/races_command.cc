#include "src/tools/races_command.h"

#include <exception>
#include <fstream>
#include <optional>
#include <string>

#include "src/core/jsonw.h"
#include "src/runner/runner.h"
#include "src/runner/scenario.h"

namespace ostools {
namespace {

constexpr const char* kRacesUsage =
    "usage: osprof_tool races <scenario> [--trials=N] [--jobs=J]\n"
    "                         [--json=FILE]\n"
    "  Runs the scenario with SimRace happens-before tracking and prints\n"
    "  every data race observed (deduplicated across trials).  Tracking\n"
    "  consumes no simulated time, so profiles match the untracked run\n"
    "  byte for byte.  Exit code 3 means races were found; the seeded\n"
    "  race_fixture_* scenarios exist to produce exactly that.\n"
    "  --trials=N   independently seeded trials (default 1)\n"
    "  --jobs=J     worker threads (does not affect the report)\n"
    "  --json=FILE  write the osprof-races-v1 document to FILE\n";

std::optional<std::string> FlagValue(const std::string& arg,
                                     const std::string& prefix) {
  if (arg.rfind(prefix, 0) != 0) {
    return std::nullopt;
  }
  return arg.substr(prefix.size());
}

}  // namespace

int RunRacesCommand(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err) {
  std::string scenario_name;
  std::string json_path;
  osrunner::RunOptions run;
  for (const std::string& arg : args) {
    if (arg == "--help") {
      out << kRacesUsage;
      return 0;
    }
    if (const auto v = FlagValue(arg, "--json=")) {
      json_path = *v;
    } else if (const auto v = FlagValue(arg, "--trials=")) {
      try {
        run.trials = std::stoi(*v);
      } catch (const std::exception&) {
        err << "osprof_tool races: bad --trials value '" << *v << "'\n";
        return 1;
      }
    } else if (const auto v = FlagValue(arg, "--jobs=")) {
      try {
        run.jobs = std::stoi(*v);
      } catch (const std::exception&) {
        err << "osprof_tool races: bad --jobs value '" << *v << "'\n";
        return 1;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      err << "osprof_tool races: unknown flag '" << arg << "'\n"
          << kRacesUsage;
      return 1;
    } else if (scenario_name.empty()) {
      scenario_name = arg;
    } else {
      err << kRacesUsage;
      return 1;
    }
  }
  if (scenario_name.empty() || run.trials <= 0) {
    err << kRacesUsage;
    return 1;
  }

  const osrunner::Scenario* scenario =
      osrunner::BuiltinScenarios().Find(scenario_name);
  if (scenario == nullptr) {
    err << "osprof_tool races: unknown scenario '" << scenario_name << "'\n";
    return 2;
  }
  osrunner::Scenario tracked = *scenario;
  tracked.track_races = true;

  osrunner::RunResult result;
  try {
    result = osrunner::RunScenario(tracked, run);
  } catch (const std::exception& e) {
    err << "osprof_tool races: " << e.what() << "\n";
    return 2;
  }

  const std::vector<std::string> reports = result.RaceReports();
  out << scenario->name << ": " << scenario->description << "\n";
  out << result.options.trials << " trial(s), "
      << result.TotalCounter("race_accesses_checked")
      << " shared accesses checked across "
      << result.TotalCounter("race_cells_tracked") << " cell(s)\n";
  if (reports.empty()) {
    out << "no data races\n";
  } else {
    out << reports.size() << " data race(s):\n";
    for (const std::string& report : reports) {
      out << "  " << report << "\n";
    }
  }

  if (!json_path.empty()) {
    osjson::Value doc = osjson::Value::Object();
    doc.Set("schema", osjson::Value::Str("osprof-races-v1"));
    doc.Set("scenario", osjson::Value::Str(scenario->name));
    doc.Set("trials", osjson::Value::Int(result.options.trials));
    doc.Set("races_found", osjson::Value::Bool(!reports.empty()));
    osjson::Value report_array = osjson::Value::Array();
    for (const std::string& report : reports) {
      report_array.Append(osjson::Value::Str(report));
    }
    doc.Set("reports", std::move(report_array));
    osjson::Value counters = osjson::Value::Object();
    for (const char* name : {"race_reports", "race_racy_accesses",
                             "race_accesses_checked", "race_cells_tracked"}) {
      counters.Set(name, osjson::Value::Uint(result.TotalCounter(name)));
    }
    doc.Set("counters", std::move(counters));
    std::ofstream json(json_path);
    if (!json) {
      err << "osprof_tool races: cannot write " << json_path << "\n";
      return 2;
    }
    json << doc.Dump();
    out << "wrote " << json_path << "\n";
  }
  return reports.empty() ? 0 : 3;
}

}  // namespace ostools
