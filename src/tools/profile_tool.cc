#include "src/tools/profile_tool.h"

#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>

#include "src/core/analysis.h"
#include "src/core/cluster.h"
#include "src/core/compare.h"
#include "src/core/peaks.h"
#include "src/core/prior.h"
#include "src/core/profile.h"
#include "src/core/report.h"
#include "src/core/sampling.h"
#include "src/tools/gate_command.h"
#include "src/tools/layers_command.h"
#include "src/tools/lint_command.h"
#include "src/tools/noise_command.h"
#include "src/tools/races_command.h"
#include "src/tools/run_command.h"

namespace ostools {
namespace {

constexpr const char* kUsage =
    "usage: osprof_tool <command> ...\n"
    "  render  <set.prof> [op]              ASCII plots (all ops or one)\n"
    "  rank    <set.prof>                   operations by total latency\n"
    "  peaks   <set.prof> <op>              peak report with hypotheses\n"
    "  compare <a.prof> <b.prof> [--method <name>]\n"
    "                                       automated profile analysis\n"
    "  gnuplot <set.prof> <op>              gnuplot script for one op\n"
    "  check   <set.prof>                   checksum verification\n"
    "  outliers <a.prof> <b.prof> ...       fleet outlier machines\n"
    "  grid    <set.sprof> <op> [lo hi]     sampled-profile density grid\n"
    "  plot3d  <set.sprof> <op>             gnuplot script (Figure 9 style)\n"
    "  run     <scenario> [--trials=N] [--jobs=J] [--out=PREFIX]\n"
    "                                       multi-trial scenario runner\n"
    "  run     --list                       available scenarios\n"
    "  gate    <scenario> [--baseline=PREFIX] [--raters=emd,chi2,ops,latency]\n"
    "          [--threshold=X] [--trials=N] [--jobs=J] [--json=FILE]\n"
    "          [--update]                    profile-regression gate\n"
    "  gate    --list                       gateable scenarios\n"
    "  layers  <scenario> [--trials=N] [--jobs=J] [--json=FILE] [--out=FILE]\n"
    "                                       exact layered latency "
    "decomposition\n"
    "  noise   [scenario]                   OS-noise tracer table + Eq.3 "
    "check\n"
    "  races   <scenario> [--trials=N] [--jobs=J] [--json=FILE]\n"
    "                                       SimRace data-race report\n"
    "  lint    [paths...] [--rules=r1,r2] [--json=FILE]\n"
    "                                       in-tree static analysis\n"
    "  lint    --list-rules                 lint rule names\n"
    "methods: chi-square, total-ops, total-latency, earth-movers,\n"
    "         intersection, jeffrey, minkowski-l1, minkowski-l2\n";

std::optional<osprof::ProfileSet> LoadSet(const std::string& path,
                                          std::ostream& err) {
  std::ifstream in(path);
  if (!in) {
    err << "osprof_tool: cannot open " << path << "\n";
    return std::nullopt;
  }
  try {
    return osprof::ProfileSet::Parse(in);
  } catch (const std::exception& e) {
    err << "osprof_tool: parse error in " << path << ": " << e.what() << "\n";
    return std::nullopt;
  }
}

std::optional<osprof::CompareMethod> MethodByName(const std::string& name) {
  using osprof::CompareMethod;
  for (CompareMethod m :
       {CompareMethod::kChiSquare, CompareMethod::kTotalOps,
        CompareMethod::kTotalLatency, CompareMethod::kEarthMovers,
        CompareMethod::kIntersection, CompareMethod::kJeffrey,
        CompareMethod::kMinkowskiL1, CompareMethod::kMinkowskiL2}) {
    if (osprof::CompareMethodName(m) == name) {
      return m;
    }
  }
  return std::nullopt;
}

int Render(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  const auto set = LoadSet(args[1], err);
  if (!set) {
    return 2;
  }
  if (args.size() >= 3) {
    const osprof::Profile* p = set->Find(args[2]);
    if (p == nullptr) {
      err << "osprof_tool: no operation '" << args[2] << "' in " << args[1]
          << "\n";
      return 2;
    }
    out << osprof::RenderAscii(*p);
    return 0;
  }
  out << osprof::RenderAsciiSet(*set);
  return 0;
}

int Rank(const std::vector<std::string>& args, std::ostream& out,
         std::ostream& err) {
  const auto set = LoadSet(args[1], err);
  if (!set) {
    return 2;
  }
  out << "operation        ops          latency%   cumulative%\n";
  for (const osprof::RankedOp& op : osprof::RankByLatency(*set)) {
    char line[128];
    std::snprintf(line, sizeof(line), "%-16s %-12llu %8.2f%% %10.2f%%\n",
                  op.op_name.c_str(),
                  static_cast<unsigned long long>(op.total_ops),
                  op.latency_fraction * 100.0,
                  op.cumulative_fraction * 100.0);
    out << line;
  }
  return 0;
}

int Peaks(const std::vector<std::string>& args, std::ostream& out,
          std::ostream& err) {
  const auto set = LoadSet(args[1], err);
  if (!set) {
    return 2;
  }
  const osprof::Profile* p = set->Find(args[2]);
  if (p == nullptr) {
    err << "osprof_tool: no operation '" << args[2] << "'\n";
    return 2;
  }
  const auto peaks = osprof::FindPeaks(p->histogram());
  out << osprof::DescribePeaks(peaks) << "\n";
  const osprof::PriorKnowledge prior = osprof::PriorKnowledge::PaperTestbed();
  for (const auto& annotated : prior.Annotate(peaks)) {
    out << "  peak @" << annotated.peak.mode_bucket << ": "
        << annotated.peak.count << " ops, mean "
        << osprof::FormatSeconds(annotated.peak.mean_latency /
                                 osprof::kPaperCpuHz);
    if (!annotated.hypotheses.empty()) {
      out << "  [";
      for (std::size_t i = 0; i < annotated.hypotheses.size(); ++i) {
        out << (i != 0 ? ", " : "") << annotated.hypotheses[i];
      }
      out << "]";
    }
    out << "\n";
  }
  return 0;
}

int Compare(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  osprof::AnalysisOptions options;
  std::vector<std::string> files;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--method") {
      if (i + 1 >= args.size()) {
        err << "osprof_tool: --method needs an argument\n";
        return 1;
      }
      const auto method = MethodByName(args[++i]);
      if (!method) {
        err << "osprof_tool: unknown method '" << args[i] << "'\n";
        return 1;
      }
      options.method = *method;
      options.score_threshold = osprof::DefaultThreshold(*method);
    } else {
      files.push_back(args[i]);
    }
  }
  if (files.size() != 2) {
    err << kUsage;
    return 1;
  }
  const auto a = LoadSet(files[0], err);
  const auto b = LoadSet(files[1], err);
  if (!a || !b) {
    return 2;
  }
  const osprof::AnalysisReport report =
      osprof::CompareProfileSets(*a, *b, options);
  out << "method: " << osprof::CompareMethodName(options.method) << "\n";
  out << report.Summary();
  return 0;
}

int Gnuplot(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  const auto set = LoadSet(args[1], err);
  if (!set) {
    return 2;
  }
  const osprof::Profile* p = set->Find(args[2]);
  if (p == nullptr) {
    err << "osprof_tool: no operation '" << args[2] << "'\n";
    return 2;
  }
  out << osprof::RenderGnuplot(*p);
  return 0;
}

int Check(const std::vector<std::string>& args, std::ostream& out,
          std::ostream& err) {
  const auto set = LoadSet(args[1], err);
  if (!set) {
    return 2;
  }
  bool all_ok = true;
  for (const auto& [name, profile] : *set) {
    const bool ok = profile.histogram().CheckConsistency();
    all_ok = all_ok && ok;
    out << (ok ? "OK      " : "BROKEN  ") << name << " ("
        << profile.total_operations() << " ops recorded, "
        << profile.histogram().recorded() << " expected)\n";
  }
  out << (all_ok ? "all profiles consistent\n"
                 : "CHECKSUM MISMATCH: lost updates or instrumentation "
                   "error\n");
  return all_ok ? 0 : 2;
}

int Outliers(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  std::vector<osprof::MachineProfile> fleet;
  for (std::size_t i = 1; i < args.size(); ++i) {
    auto set = LoadSet(args[i], err);
    if (!set) {
      return 2;
    }
    // Strip directories from the machine label.
    const auto slash = args[i].find_last_of('/');
    const std::string name =
        slash == std::string::npos ? args[i] : args[i].substr(slash + 1);
    fleet.push_back(osprof::MachineProfile{name, std::move(*set)});
  }
  const auto deviations = osprof::FindOutliers(fleet);
  int flagged = 0;
  for (const osprof::MachineDeviation& d : deviations) {
    if (!d.outlier) {
      continue;
    }
    ++flagged;
    char line[160];
    std::snprintf(line, sizeof(line), "OUTLIER  %-20s %-16s score %.3f\n",
                  d.machine.c_str(), d.op_name.c_str(), d.score);
    out << line;
  }
  if (flagged == 0) {
    out << "no outliers: every machine's profiles match the fleet\n";
  }
  return 0;
}

std::optional<osprof::SampledProfileSet> LoadSampled(const std::string& path,
                                                     std::ostream& err) {
  std::ifstream in(path);
  if (!in) {
    err << "osprof_tool: cannot open " << path << "\n";
    return std::nullopt;
  }
  try {
    return osprof::SampledProfileSet::Parse(in);
  } catch (const std::exception& e) {
    err << "osprof_tool: parse error in " << path << ": " << e.what() << "\n";
    return std::nullopt;
  }
}

int Grid(const std::vector<std::string>& args, std::ostream& out,
         std::ostream& err) {
  const auto set = LoadSampled(args[1], err);
  if (!set) {
    return 2;
  }
  int lo = 5;
  int hi = 30;
  if (args.size() >= 5) {
    lo = std::stoi(args[3]);
    hi = std::stoi(args[4]);
  }
  out << set->RenderGrid(args[2], lo, hi);
  return 0;
}

int Plot3D(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  const auto set = LoadSampled(args[1], err);
  if (!set) {
    return 2;
  }
  out << set->RenderGnuplot3D(args[2], osprof::kPaperCpuHz);
  return 0;
}

}  // namespace

int RunProfileTool(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << kUsage;
    return args.empty() ? 1 : 0;
  }
  const std::string& cmd = args[0];
  const std::size_t n = args.size();
  if (cmd == "render" && n >= 2) {
    return Render(args, out, err);
  }
  if (cmd == "rank" && n == 2) {
    return Rank(args, out, err);
  }
  if (cmd == "peaks" && n == 3) {
    return Peaks(args, out, err);
  }
  if (cmd == "compare" && n >= 3) {
    return Compare(args, out, err);
  }
  if (cmd == "gnuplot" && n == 3) {
    return Gnuplot(args, out, err);
  }
  if (cmd == "check" && n == 2) {
    return Check(args, out, err);
  }
  if (cmd == "outliers" && n >= 3) {
    return Outliers(args, out, err);
  }
  if (cmd == "grid" && (n == 3 || n == 5)) {
    return Grid(args, out, err);
  }
  if (cmd == "plot3d" && n == 3) {
    return Plot3D(args, out, err);
  }
  if (cmd == "run" && n >= 2) {
    return RunRunCommand(std::vector<std::string>(args.begin() + 1, args.end()),
                         out, err);
  }
  if (cmd == "gate" && n >= 2) {
    return RunGateCommand(
        std::vector<std::string>(args.begin() + 1, args.end()), out, err);
  }
  if (cmd == "layers" && n >= 2) {
    return RunLayersCommand(
        std::vector<std::string>(args.begin() + 1, args.end()), out, err);
  }
  if (cmd == "noise") {
    return RunNoiseCommand(
        std::vector<std::string>(args.begin() + 1, args.end()), out, err);
  }
  if (cmd == "races") {
    return RunRacesCommand(
        std::vector<std::string>(args.begin() + 1, args.end()), out, err);
  }
  if (cmd == "lint") {
    return RunLintCommand(
        std::vector<std::string>(args.begin() + 1, args.end()), out, err);
  }
  err << kUsage;
  return 1;
}

}  // namespace ostools
