// The `osprof_tool races` subcommand: run a scenario with SimRace
// happens-before tracking (src/sim/race_tracker.h) and print every data
// race observed, deduplicated across trials.  Machine-readable output is
// the osprof-races-v1 JSON document (reports plus the race_* counters).

#ifndef OSPROF_SRC_TOOLS_RACES_COMMAND_H_
#define OSPROF_SRC_TOOLS_RACES_COMMAND_H_

#include <ostream>
#include <string>
#include <vector>

namespace ostools {

// args are the tokens after "races":
//   races <scenario> [--trials=N] [--jobs=J] [--json=FILE]
// Returns the process exit code: 0 race-free, 1 usage error, 2 runtime
// failure (unknown scenario, unwritable JSON), 3 data races found.
int RunRacesCommand(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err);

}  // namespace ostools

#endif  // OSPROF_SRC_TOOLS_RACES_COMMAND_H_
