// CLI for FoSgen: instruments a file-system source file.
//
//   $ fosgen ext2_dir.c > ext2_dir_instrumented.c

#include <fstream>
#include <iostream>
#include <sstream>

#include "src/tools/fosgen.h"

int main(int argc, char** argv) {
  std::string source;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "fosgen: cannot open " << argv[1] << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    source = buffer.str();
  }

  const ostools::FosgenResult result = ostools::FosgenInstrument(source);
  std::cout << result.source;
  std::cerr << "fosgen: instrumented " << result.instrumented.size()
            << " operation(s), wrapped " << result.wrapped.size()
            << " generic function(s), " << result.insertions
            << " probe insertion(s)\n";
  for (const std::string& op : result.instrumented) {
    std::cerr << "  instrumented " << op << "\n";
  }
  for (const std::string& op : result.wrapped) {
    std::cerr << "  wrapped      " << op << "\n";
  }
  return 0;
}
