/*
 * The aggregate statistics library, C edition (paper §4: "This C library
 * provides routines to allocate and free statistics buffers, store
 * request start times in context variables, calculate request latencies,
 * and store them in the appropriate bucket" -- 141 lines of C, portable
 * across Unix applications, Windows applications, and both kernels).
 *
 * This header is what FoSgen-instrumented sources include.  FSPROF_PRE
 * stores the request start time in a context variable; FSPROF_POST
 * computes the latency and sorts it into a log2 bucket.  fsprof_dump()
 * is the reporting interface: it emits the same text format the C++
 * ProfileSet parses, so osprof_tool can render/compare C-side profiles.
 */

#ifndef FSPROF_H
#define FSPROF_H

#include <stdint.h>
#include <stdio.h>
#include <string.h>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
static inline uint64_t fsprof_rdtsc(void) { return __rdtsc(); }
#else
#include <time.h>
static inline uint64_t fsprof_rdtsc(void) {
  struct timespec ts;
  // osprof-lint: allow(determinism) -- real-hardware TSC fallback.
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (uint64_t)ts.tv_sec * 1000000000ull + (uint64_t)ts.tv_nsec;
}
#endif

#ifndef FSPROF_MAX_OPS
#define FSPROF_MAX_OPS 64
#endif

struct fsprof_op_stats {
  const char *name;
  uint64_t buckets[64];
  uint64_t recorded; /* The checksum counter (paper §4). */
  uint64_t total_latency;
};

static struct fsprof_op_stats fsprof_table[FSPROF_MAX_OPS];
static int fsprof_op_count;

static inline int fsprof_bucket(uint64_t latency) {
  int bucket = 0;
  if (latency <= 1) {
    return 0;
  }
  while (latency > 1) {
    latency >>= 1;
    ++bucket;
  }
  return bucket;
}

static inline struct fsprof_op_stats *fsprof_lookup(const char *name) {
  int i;
  for (i = 0; i < fsprof_op_count; ++i) {
    if (strcmp(fsprof_table[i].name, name) == 0) {
      return &fsprof_table[i];
    }
  }
  if (fsprof_op_count >= FSPROF_MAX_OPS) {
    return &fsprof_table[0]; /* Overflow: merge into slot 0. */
  }
  fsprof_table[fsprof_op_count].name = name;
  return &fsprof_table[fsprof_op_count++];
}

static inline void fsprof_record(const char *name, uint64_t start) {
  const uint64_t end = fsprof_rdtsc();
  const uint64_t latency = end >= start ? end - start : 0;
  struct fsprof_op_stats *stats = fsprof_lookup(name);
  stats->recorded += 1;
  stats->total_latency += latency;
  stats->buckets[fsprof_bucket(latency)] += 1;
}

/* The instrumentation macros FoSgen inserts. */
#define FSPROF_PRE(op) uint64_t fsprof_start_##op = fsprof_rdtsc()
#define FSPROF_POST(op) fsprof_record(#op, fsprof_start_##op)

/* Reporting: the /proc-interface analogue.  The output is the osprof
 * ProfileSet text format. */
static inline void fsprof_dump(FILE *out) {
  int i, b;
  fprintf(out, "# osprof profile set v1\n");
  fprintf(out, "resolution 1\n");
  for (i = 0; i < fsprof_op_count; ++i) {
    const struct fsprof_op_stats *stats = &fsprof_table[i];
    fprintf(out, "profile %s recorded=%llu total_latency=%llu\n", stats->name,
            (unsigned long long)stats->recorded,
            (unsigned long long)stats->total_latency);
    for (b = 0; b < 64; ++b) {
      if (stats->buckets[b] != 0) {
        fprintf(out, "  bucket %d %llu\n", b,
                (unsigned long long)stats->buckets[b]);
      }
    }
    fprintf(out, "end\n");
  }
}

/* Consistency verification (paper §4: checksums of the number of time
 * measurements).  Returns 0 if every profile's bucket sum matches its
 * checksum counter. */
static inline int fsprof_check(void) {
  int i, b;
  for (i = 0; i < fsprof_op_count; ++i) {
    uint64_t sum = 0;
    for (b = 0; b < 64; ++b) {
      sum += fsprof_table[i].buckets[b];
    }
    if (sum != fsprof_table[i].recorded) {
      return 1;
    }
  }
  return 0;
}

#endif /* FSPROF_H */
