#include "src/tools/layers_command.h"

#include <cstdio>
#include <exception>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "src/core/jsonw.h"
#include "src/core/layered.h"
#include "src/runner/runner.h"
#include "src/runner/scenario.h"

namespace ostools {
namespace {

constexpr const char* kLayersUsage =
    "usage: osprof_tool layers <scenario> [--trials=N] [--jobs=J]\n"
    "                          [--json=FILE] [--out=FILE]\n"
    "  --trials=N   independently-seeded trials to run (default 1)\n"
    "  --jobs=J     worker threads; 0 = all hardware threads (default 1)\n"
    "  --json=FILE  write the osprof-layers-v1 JSON decomposition to FILE\n"
    "  --out=FILE   write the serialized .layers form (gate golden format)\n";

std::optional<std::string> FlagValue(const std::string& arg,
                                     const std::string& prefix) {
  if (arg.rfind(prefix, 0) != 0) {
    return std::nullopt;
  }
  return arg.substr(prefix.size());
}

osjson::Value LayersJson(const std::string& scenario, int trials,
                         const std::map<std::string,
                                        osprof::LayeredProfileSet>& layers) {
  osjson::Value doc = osjson::Value::Object();
  doc.Set("schema", osjson::Value::Str("osprof-layers-v1"));
  doc.Set("scenario", osjson::Value::Str(scenario));
  doc.Set("trials", osjson::Value::Int(trials));
  osjson::Value layer_array = osjson::Value::Array();
  for (const auto& [layer, set] : layers) {
    if (set.empty()) {
      continue;
    }
    osjson::Value l = osjson::Value::Object();
    l.Set("layer", osjson::Value::Str(layer));
    l.Set("resolution", osjson::Value::Int(set.resolution()));
    osjson::Value op_array = osjson::Value::Array();
    for (const auto& [op, profile] : set) {
      if (profile.empty()) {
        continue;
      }
      osjson::Value o = osjson::Value::Object();
      o.Set("op", osjson::Value::Str(op));
      osjson::Value bucket_array = osjson::Value::Array();
      for (const auto& [bucket, data] : profile.buckets()) {
        osjson::Value b = osjson::Value::Object();
        b.Set("bucket", osjson::Value::Int(bucket));
        b.Set("count", osjson::Value::Uint(data.count));
        osjson::Value cycles = osjson::Value::Object();
        for (int c = 0; c < osprof::kNumLayerComponents; ++c) {
          cycles.Set(
              osprof::LayerComponentName(
                  static_cast<osprof::LayerComponent>(c)),
              osjson::Value::Uint(data.cycles[c]));
        }
        b.Set("cycles", std::move(cycles));
        bucket_array.Append(std::move(b));
      }
      o.Set("buckets", std::move(bucket_array));
      op_array.Append(std::move(o));
    }
    l.Set("ops", std::move(op_array));
    layer_array.Append(std::move(l));
  }
  doc.Set("layers", std::move(layer_array));
  return doc;
}

}  // namespace

int RunLayersCommand(const std::vector<std::string>& args, std::ostream& out,
                     std::ostream& err) {
  std::string scenario_name;
  osrunner::RunOptions options;
  std::string json_path;
  std::string out_path;
  for (const std::string& arg : args) {
    if (const auto v = FlagValue(arg, "--trials=")) {
      try {
        options.trials = std::stoi(*v);
      } catch (const std::exception&) {
        err << "osprof_tool layers: bad --trials value '" << *v << "'\n";
        return 1;
      }
    } else if (const auto v = FlagValue(arg, "--jobs=")) {
      try {
        options.jobs = std::stoi(*v);
      } catch (const std::exception&) {
        err << "osprof_tool layers: bad --jobs value '" << *v << "'\n";
        return 1;
      }
    } else if (const auto v = FlagValue(arg, "--json=")) {
      json_path = *v;
    } else if (const auto v = FlagValue(arg, "--out=")) {
      out_path = *v;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "osprof_tool layers: unknown flag '" << arg << "'\n"
          << kLayersUsage;
      return 1;
    } else if (scenario_name.empty()) {
      scenario_name = arg;
    } else {
      err << kLayersUsage;
      return 1;
    }
  }
  if (scenario_name.empty()) {
    err << kLayersUsage;
    return 1;
  }
  const osrunner::Scenario* scenario =
      osrunner::BuiltinScenarios().Find(scenario_name);
  if (scenario == nullptr) {
    err << "osprof_tool layers: unknown scenario '" << scenario_name << "'\n";
    return 1;
  }
  if (options.trials <= 0) {
    err << "osprof_tool layers: --trials must be positive\n";
    return 1;
  }

  osrunner::RunResult result;
  try {
    result = osrunner::RunScenario(*scenario, options);
  } catch (const std::exception& e) {
    err << "osprof_tool layers: " << e.what() << "\n";
    return 2;
  }

  std::map<std::string, osprof::LayeredProfileSet> layers;
  for (const auto& [layer, lr] : result.layers) {
    if (!lr.layered.empty()) {
      layers.emplace(layer, lr.layered);
    }
  }

  out << scenario->name << ": " << scenario->description << "\n";
  char line[200];
  std::snprintf(line, sizeof(line),
                "layered decomposition over %d trial(s) (base seed %llu)\n",
                result.options.trials,
                static_cast<unsigned long long>(scenario->kernel.seed));
  out << line;
  if (layers.empty()) {
    out << "no layered data: no instrumented layer recorded any "
           "operation\n";
    return 0;
  }
  out << osprof::RenderLayers(layers);

  if (!json_path.empty()) {
    std::ofstream json(json_path);
    if (!json) {
      err << "osprof_tool layers: cannot write " << json_path << "\n";
      return 2;
    }
    json << LayersJson(scenario->name, result.options.trials, layers).Dump();
    out << "wrote " << json_path << "\n";
  }
  if (!out_path.empty()) {
    std::ofstream file(out_path);
    if (!file) {
      err << "osprof_tool layers: cannot write " << out_path << "\n";
      return 2;
    }
    osprof::SerializeLayers(layers, file);
    out << "wrote " << out_path << "\n";
  }
  return 0;
}

}  // namespace ostools
