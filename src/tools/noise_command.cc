#include "src/tools/noise_command.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <variant>

#include "src/core/histogram.h"
#include "src/core/preemption.h"
#include "src/profilers/noise_profiler.h"
#include "src/runner/scenario.h"
#include "src/sim/kernel.h"

namespace ostools {
namespace {

constexpr const char* kNoiseUsage =
    "usage: osprof_tool noise [scenario]\n"
    "  Runs a noise scenario (default \"noise\") on one simulated machine\n"
    "  and prints the rtla/osnoise-style per-task interference table plus\n"
    "  the Equation 3 forced-preemption check.  Noise scenarios:\n"
    "  noise, noise_idle.\n";

}  // namespace

int RunNoiseCommand(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err) {
  std::string scenario_name = "noise";
  bool named = false;
  for (const std::string& arg : args) {
    if (arg == "--help") {
      out << kNoiseUsage;
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      err << "osprof_tool noise: unknown flag '" << arg << "'\n"
          << kNoiseUsage;
      return 1;
    }
    if (named) {
      err << kNoiseUsage;
      return 1;
    }
    scenario_name = arg;
    named = true;
  }
  const osrunner::Scenario* scenario =
      osrunner::BuiltinScenarios().Find(scenario_name);
  if (scenario == nullptr) {
    err << "osprof_tool noise: unknown scenario '" << scenario_name << "'\n";
    return 2;
  }
  const auto* spec = std::get_if<osrunner::NoiseSpec>(&scenario->workload);
  if (spec == nullptr) {
    err << "osprof_tool noise: scenario '" << scenario_name
        << "' is not a noise workload (noise scenarios: noise, noise_idle)\n";
    return 2;
  }

  // One machine, one trial: the tracer's table is a per-task view, and the
  // multi-trial merge lives in `run`/`gate`.
  osim::Kernel kernel(scenario->kernel);
  osprofilers::NoiseProfiler profiler(&kernel, scenario->profilers.resolution);
  for (int i = 0; i < spec->tasks; ++i) {
    kernel.Spawn("noise" + std::to_string(i),
                 profiler.NoiseTask(i, spec->samples, spec->burst));
  }
  kernel.RunUntilThreadsFinish();

  out << scenario->name << ": " << scenario->description << "\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "%d task(s) x %llu samples of %llu-cycle bursts, %d CPU(s), "
                "quantum %llu, seed %llu\n",
                spec->tasks,
                static_cast<unsigned long long>(spec->samples),
                static_cast<unsigned long long>(spec->burst),
                scenario->kernel.num_cpus,
                static_cast<unsigned long long>(scenario->kernel.quantum),
                static_cast<unsigned long long>(scenario->kernel.seed));
  out << line;
  out << profiler.RenderSummary();

  // The §3.3 Equation 3 check the gate's noise rater automates: all
  // samples sit in the burst's bucket, so the expected forced-preemption
  // count is samples * mid(bucket) / Q, surfacing near bucket log2(Q).
  // The preemption term assumes a waiting competitor, so without CPU
  // oversubscription the model predicts zero.
  const double quantum = static_cast<double>(scenario->kernel.quantum);
  double predicted = 0.0;
  if (spec->tasks > scenario->kernel.num_cpus) {
    osprof::Histogram samples;
    samples.set_bucket(
        osprof::BucketIndex(spec->burst),
        static_cast<std::uint64_t>(spec->tasks) * spec->samples);
    predicted = osprof::ExpectedPreemptedRequests(samples, quantum);
  }
  const double measured = static_cast<double>(profiler.TotalPreemptions());
  const double rel_err =
      predicted > 0.0 ? std::abs(measured - predicted) / predicted
                      : (measured > 0.0 ? 1.0 : 0.0);
  std::snprintf(line, sizeof(line),
                "Eq.3: predicted %.1f forced preemptions (bucket %d), "
                "measured %.0f, rel err %.4f (tolerance %.2f)\n",
                predicted, osprof::PreemptionBucket(quantum), measured,
                rel_err, spec->eq3_tolerance);
  out << line;
  return rel_err <= spec->eq3_tolerance ? 0 : 3;
}

}  // namespace ostools
