// CLI entry point for the osprof post-processing tool.

#include <iostream>
#include <string>
#include <vector>

#include "src/tools/profile_tool.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    args.emplace_back(argv[i]);
  }
  return ostools::RunProfileTool(args, std::cout, std::cerr);
}
