#include "src/tools/fosgen.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <set>
#include <sstream>

namespace ostools {
namespace {

// --- Lexical helpers ---------------------------------------------------------

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Marks every byte inside a comment, string or char literal, so the
// scanner never matches inside them.
std::vector<bool> BuildCodeMask(const std::string& src) {
  std::vector<bool> masked(src.size(), false);
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          masked[i] = true;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          masked[i] = true;
        } else if (c == '"') {
          state = State::kString;
          masked[i] = true;
        } else if (c == '\'') {
          state = State::kChar;
          masked[i] = true;
        }
        break;
      case State::kLineComment:
        masked[i] = true;
        if (c == '\n') {
          state = State::kCode;
        }
        break;
      case State::kBlockComment:
        masked[i] = true;
        if (c == '*' && next == '/') {
          masked[i + 1] = true;
          ++i;
          state = State::kCode;
        }
        break;
      case State::kString:
        masked[i] = true;
        if (c == '\\') {
          if (i + 1 < src.size()) {
            masked[i + 1] = true;
          }
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        masked[i] = true;
        if (c == '\\') {
          if (i + 1 < src.size()) {
            masked[i + 1] = true;
          }
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
    }
  }
  return masked;
}

// Finds the matching close for the opener at `open` (src[open] must be
// the opener).  Returns npos if unbalanced.
std::size_t MatchBrace(const std::string& src, const std::vector<bool>& mask,
                       std::size_t open, char open_ch, char close_ch) {
  int depth = 0;
  for (std::size_t i = open; i < src.size(); ++i) {
    if (mask[i]) {
      continue;
    }
    if (src[i] == open_ch) {
      ++depth;
    } else if (src[i] == close_ch) {
      --depth;
      if (depth == 0) {
        return i;
      }
    }
  }
  return std::string::npos;
}

std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return s.substr(b, e - b);
}

// --- VFS knowledge ------------------------------------------------------------

struct OpSignature {
  const char* ret;
  const char* params;
  const char* args;
};

// 2.6-era VFS signatures for the operations FoSgen wraps when a file
// system uses a generic kernel export (paper Figure 4: Ext2's
// generic_read_dir).
const std::map<std::string, OpSignature>& SignatureTable() {
  static const std::map<std::string, OpSignature> kTable = {
      {"read",
       {"ssize_t", "struct file *file, char *buf, size_t count, loff_t *ppos",
        "file, buf, count, ppos"}},
      {"write",
       {"ssize_t",
        "struct file *file, const char *buf, size_t count, loff_t *ppos",
        "file, buf, count, ppos"}},
      {"readdir",
       {"int", "struct file *file, void *dirent, filldir_t filldir",
        "file, dirent, filldir"}},
      {"llseek",
       {"loff_t", "struct file *file, loff_t offset, int origin",
        "file, offset, origin"}},
      {"ioctl",
       {"int",
        "struct inode *inode, struct file *file, unsigned int cmd, "
        "unsigned long arg",
        "inode, file, cmd, arg"}},
      {"fsync",
       {"int", "struct file *file, struct dentry *dentry, int datasync",
        "file, dentry, datasync"}},
      {"open", {"int", "struct inode *inode, struct file *file", "inode, file"}},
      {"release",
       {"int", "struct inode *inode, struct file *file", "inode, file"}},
      {"readpage", {"int", "struct file *file, struct page *page", "file, page"}},
      {"mmap",
       {"int", "struct file *file, struct vm_area_struct *vma", "file, vma"}},
  };
  return kTable;
}

// --- Structure discovery -------------------------------------------------------

struct VectorEntry {
  std::string op;
  std::string function;
  std::size_t function_pos;  // Position of the function token in `src`.
};

struct OperationVector {
  std::size_t begin = 0;  // '{' of the initializer.
  std::size_t end = 0;    // Matching '}'.
  std::vector<VectorEntry> entries;
};

// Scans for `..._operations <name> = { entries };` blocks and extracts
// their op:function pairs (both GNU `op: func` and C99 `.op = func`).
std::vector<OperationVector> FindOperationVectors(const std::string& src,
                                                  const std::vector<bool>& mask) {
  std::vector<OperationVector> vectors;
  const std::string kKey = "_operations";
  for (std::size_t pos = src.find(kKey); pos != std::string::npos;
       pos = src.find(kKey, pos + 1)) {
    if (mask[pos]) {
      continue;
    }
    // Must be the tail of an identifier, then "name = {".
    const std::size_t after = pos + kKey.size();
    std::size_t i = after;
    while (i < src.size() && std::isspace(static_cast<unsigned char>(src[i]))) {
      ++i;
    }
    // Variable name.
    std::size_t name_end = i;
    while (name_end < src.size() && IsIdentChar(src[name_end])) {
      ++name_end;
    }
    if (name_end == i) {
      continue;  // A declaration like `struct file_operations;`.
    }
    i = name_end;
    while (i < src.size() && std::isspace(static_cast<unsigned char>(src[i]))) {
      ++i;
    }
    if (i >= src.size() || src[i] != '=') {
      continue;
    }
    ++i;
    while (i < src.size() && std::isspace(static_cast<unsigned char>(src[i]))) {
      ++i;
    }
    if (i >= src.size() || src[i] != '{') {
      continue;
    }
    OperationVector vec;
    vec.begin = i;
    vec.end = MatchBrace(src, mask, i, '{', '}');
    if (vec.end == std::string::npos) {
      continue;
    }
    // Parse entries between begin+1 and end.
    std::size_t p = vec.begin + 1;
    while (p < vec.end) {
      // Skip whitespace, commas and masked regions.
      while (p < vec.end &&
             (mask[p] || std::isspace(static_cast<unsigned char>(src[p])) ||
              src[p] == ',')) {
        ++p;
      }
      if (p >= vec.end) {
        break;
      }
      std::size_t entry_start = p;
      bool c99 = false;
      if (src[p] == '.') {
        c99 = true;
        ++p;
      }
      std::size_t op_end = p;
      while (op_end < vec.end && IsIdentChar(src[op_end])) {
        ++op_end;
      }
      const std::string op = src.substr(p, op_end - p);
      p = op_end;
      while (p < vec.end && std::isspace(static_cast<unsigned char>(src[p]))) {
        ++p;
      }
      const char sep = c99 ? '=' : ':';
      if (p >= vec.end || src[p] != sep || op.empty()) {
        // Not an entry we understand; skip to the next comma.
        p = src.find(',', entry_start);
        if (p == std::string::npos || p > vec.end) {
          break;
        }
        continue;
      }
      ++p;
      while (p < vec.end && std::isspace(static_cast<unsigned char>(src[p]))) {
        ++p;
      }
      std::size_t fn_end = p;
      while (fn_end < vec.end && IsIdentChar(src[fn_end])) {
        ++fn_end;
      }
      const std::string fn = src.substr(p, fn_end - p);
      if (!fn.empty() && fn != "NULL") {
        vec.entries.push_back(VectorEntry{op, fn, p});
      }
      p = fn_end;
    }
    vectors.push_back(std::move(vec));
  }
  return vectors;
}

// Finds the body of a function definition `name(...) {` in the unit.
struct FunctionDef {
  std::size_t body_open = 0;   // The '{'.
  std::size_t body_close = 0;  // The matching '}'.
  std::string return_type;     // e.g. "static int" with qualifiers.
};

std::optional<FunctionDef> FindDefinition(const std::string& src,
                                          const std::vector<bool>& mask,
                                          const std::string& name) {
  for (std::size_t pos = src.find(name); pos != std::string::npos;
       pos = src.find(name, pos + 1)) {
    if (mask[pos]) {
      continue;
    }
    // Whole-token match.
    if (pos > 0 && IsIdentChar(src[pos - 1])) {
      continue;
    }
    const std::size_t after = pos + name.size();
    if (after < src.size() && IsIdentChar(src[after])) {
      continue;
    }
    // The token before must not make this a call site or member access.
    std::size_t back = pos;
    while (back > 0 &&
           std::isspace(static_cast<unsigned char>(src[back - 1])) != 0) {
      --back;
    }
    if (back > 0 && (src[back - 1] == '.' || src[back - 1] == ':' ||
                     src[back - 1] == '=' || src[back - 1] == '(' ||
                     src[back - 1] == ',' || src[back - 1] == '&')) {
      continue;
    }
    // Must be followed by a parameter list and then '{'.
    std::size_t i = after;
    while (i < src.size() && std::isspace(static_cast<unsigned char>(src[i]))) {
      ++i;
    }
    if (i >= src.size() || src[i] != '(') {
      continue;
    }
    const std::size_t params_close = MatchBrace(src, mask, i, '(', ')');
    if (params_close == std::string::npos) {
      continue;
    }
    std::size_t j = params_close + 1;
    while (j < src.size() && std::isspace(static_cast<unsigned char>(src[j]))) {
      ++j;
    }
    if (j >= src.size() || src[j] != '{') {
      continue;  // A declaration/prototype, not a definition.
    }
    FunctionDef def;
    def.body_open = j;
    def.body_close = MatchBrace(src, mask, j, '{', '}');
    if (def.body_close == std::string::npos) {
      continue;
    }
    // Return type: the text back to the previous ';', '}' or file start.
    std::size_t type_begin = back;
    while (type_begin > 0) {
      const char c = src[type_begin - 1];
      if (c == ';' || c == '}' || c == '{' || c == '#') {
        break;
      }
      if (c == '/' && type_begin >= 2 && src[type_begin - 2] == '*') {
        break;  // End of a block comment.
      }
      --type_begin;
    }
    def.return_type = Trim(src.substr(type_begin, back - type_begin));
    return def;
  }
  return std::nullopt;
}

// Strips storage-class qualifiers for the temporary-variable type.
std::string ValueType(const std::string& return_type) {
  std::istringstream is(return_type);
  std::string word;
  std::string out;
  while (is >> word) {
    if (word == "static" || word == "inline" || word == "__inline__") {
      continue;
    }
    if (!out.empty()) {
      out += " ";
    }
    out += word;
  }
  return out;
}

// Instruments one function body in `src`; returns the number of macro
// insertions.  `src` is edited in place (positions found fresh inside).
int InstrumentBody(std::string* src, const std::string& op,
                   const FunctionDef& def) {
  const std::string value_type = ValueType(def.return_type);
  const bool is_void = value_type == "void";
  std::string body =
      src->substr(def.body_open, def.body_close - def.body_open + 1);
  const std::vector<bool> mask = BuildCodeMask(body);

  int insertions = 0;
  // Rewrite returns, scanning backwards so positions stay valid.
  std::vector<std::size_t> returns;
  for (std::size_t pos = body.find("return"); pos != std::string::npos;
       pos = body.find("return", pos + 1)) {
    if (mask[pos]) {
      continue;
    }
    if (pos > 0 && IsIdentChar(body[pos - 1])) {
      continue;
    }
    const std::size_t after = pos + 6;
    if (after < body.size() && IsIdentChar(body[after])) {
      continue;
    }
    returns.push_back(pos);
  }
  for (auto it = returns.rbegin(); it != returns.rend(); ++it) {
    const std::size_t pos = *it;
    std::size_t semi = pos;
    int paren = 0;
    while (semi < body.size() && (body[semi] != ';' || paren != 0)) {
      if (!mask[semi]) {
        if (body[semi] == '(') {
          ++paren;
        } else if (body[semi] == ')') {
          --paren;
        }
      }
      ++semi;
    }
    if (semi >= body.size()) {
      continue;
    }
    const std::string expr = Trim(body.substr(pos + 6, semi - (pos + 6)));
    std::string replacement;
    if (expr.empty() || is_void) {
      replacement = "{ FSPROF_POST(" + op + "); return " + expr + "; }";
    } else {
      // The paper's transformation for non-void returns.
      replacement = "{ " + value_type + " tmp_return_variable = " + expr +
                    "; FSPROF_POST(" + op +
                    "); return tmp_return_variable; }";
    }
    body.replace(pos, semi - pos + 1, replacement);
    ++insertions;
  }
  // Entry probe right after the opening brace.
  body.insert(1, "\n\tFSPROF_PRE(" + op + ");");
  ++insertions;
  // A void function may fall off the end without a return.
  if (is_void) {
    const std::size_t close = body.rfind('}');
    body.insert(close, "\tFSPROF_POST(" + op + ");\n");
    ++insertions;
  }
  src->replace(def.body_open, def.body_close - def.body_open + 1, body);
  return insertions;
}

}  // namespace

FosgenResult FosgenInstrument(const std::string& source) {
  FosgenResult result;
  result.source = source;
  if (source.find("FSPROF_") != std::string::npos) {
    return result;  // Already instrumented; FoSgen is idempotent.
  }

  std::vector<bool> mask = BuildCodeMask(result.source);
  const std::vector<OperationVector> vectors =
      FindOperationVectors(result.source, mask);

  // Collect unique (op, function) pairs; a function serving several ops is
  // instrumented under its first op, as the paper's tool does.
  std::vector<VectorEntry> todo;
  std::set<std::string> seen_functions;
  for (const OperationVector& vec : vectors) {
    for (const VectorEntry& entry : vec.entries) {
      if (seen_functions.insert(entry.function).second) {
        todo.push_back(entry);
      }
    }
  }

  std::string wrappers;
  std::vector<std::pair<std::string, std::string>> renames;
  for (const VectorEntry& entry : todo) {
    const auto def = FindDefinition(result.source, mask, entry.function);
    if (def.has_value()) {
      result.insertions += InstrumentBody(&result.source, entry.op, *def);
      result.instrumented.push_back(entry.op + ":" + entry.function);
      mask = BuildCodeMask(result.source);  // Positions moved.
      continue;
    }
    // A generic kernel export: synthesize an instrumented wrapper
    // (paper §4: "FoSgen creates wrapper functions for such operations").
    const auto sig = SignatureTable().find(entry.op);
    if (sig == SignatureTable().end()) {
      continue;  // Unknown signature: leave untouched.
    }
    const std::string wrapper_name = "fsprof_" + entry.function;
    std::ostringstream w;
    w << "static " << sig->second.ret << " " << wrapper_name << "("
      << sig->second.params << ")\n{\n";
    w << "\tFSPROF_PRE(" << entry.op << ");\n";
    if (std::string(sig->second.ret) == "void") {
      w << "\t" << entry.function << "(" << sig->second.args << ");\n";
      w << "\tFSPROF_POST(" << entry.op << ");\n";
    } else {
      w << "\t" << sig->second.ret << " tmp_return_variable = "
        << entry.function << "(" << sig->second.args << ");\n";
      w << "\tFSPROF_POST(" << entry.op << ");\n";
      w << "\treturn tmp_return_variable;\n";
    }
    w << "}\n\n";
    wrappers += w.str();
    renames.emplace_back(entry.function, wrapper_name);
    result.wrapped.push_back(entry.op + ":" + entry.function);
    result.insertions += 2;
  }

  // Point the vector entries at the wrappers (token-exact replacement,
  // outside the wrappers themselves).
  for (const auto& [from, to] : renames) {
    mask = BuildCodeMask(result.source);
    std::string& src = result.source;
    std::size_t pos = src.find(from);
    while (pos != std::string::npos) {
      if (mask[pos] || (pos > 0 && IsIdentChar(src[pos - 1])) ||
          (pos + from.size() < src.size() &&
           IsIdentChar(src[pos + from.size()]))) {
        pos = src.find(from, pos + 1);
        continue;
      }
      src.replace(pos, from.size(), to);
      mask = BuildCodeMask(src);
      pos = src.find(from, pos + to.size());
    }
  }

  // Prepend the wrappers and the macro header (paper step 3).
  std::string prologue = "#include \"fsprof.h\"\n\n";
  if (!wrappers.empty()) {
    prologue += "/* FoSgen wrappers for generic kernel functions */\n";
    prologue += wrappers;
  }
  result.source = prologue + result.source;
  return result;
}

}  // namespace ostools
