// The `osprof_tool lint` subcommand: runs the osprof_lint static-analysis
// pass (src/lint/lint.h) over files and directories and reports findings
// as file:line text plus optional osprof-lint-v1 JSON.

#ifndef OSPROF_SRC_TOOLS_LINT_COMMAND_H_
#define OSPROF_SRC_TOOLS_LINT_COMMAND_H_

#include <ostream>
#include <string>
#include <vector>

namespace ostools {

// args are the tokens after "lint":
//   lint [paths...] [--rules=r1,r2] [--json=FILE]
//   lint --list-rules
// Paths default to "src tests bench".  Exit codes:
//   0  no findings
//   1  usage error (unknown flag or rule name)
//   2  I/O error (unreadable path)
//   3  findings reported
int RunLintCommand(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err);

}  // namespace ostools

#endif  // OSPROF_SRC_TOOLS_LINT_COMMAND_H_
