#include "src/tools/run_command.h"

#include <cstdio>
#include <exception>
#include <fstream>
#include <map>
#include <optional>
#include <string>

#include "src/core/clock.h"
#include "src/core/layered.h"
#include "src/runner/runner.h"
#include "src/runner/scenario.h"

namespace ostools {
namespace {

constexpr const char* kRunUsage =
    "usage: osprof_tool run <scenario> [--trials=N] [--jobs=J] "
    "[--out=PREFIX]\n"
    "       osprof_tool run --list\n"
    "  --trials=N   independently-seeded trials to run (default 1)\n"
    "  --jobs=J     worker threads; 0 = all hardware threads (default 1)\n"
    "  --out=PREFIX write each merged layer to PREFIX.<layer>.prof, plus\n"
    "               the layered decomposition to PREFIX.layers when any\n"
    "               layer recorded one\n";

// Parses "--flag=value"; returns nullopt if arg doesn't start with prefix.
std::optional<std::string> FlagValue(const std::string& arg,
                                     const std::string& prefix) {
  if (arg.rfind(prefix, 0) != 0) {
    return std::nullopt;
  }
  return arg.substr(prefix.size());
}

int ListScenarios(std::ostream& out) {
  const osrunner::ScenarioRegistry& registry = osrunner::BuiltinScenarios();
  for (const std::string& name : registry.Names()) {
    const osrunner::Scenario* s = registry.Find(name);
    char line[200];
    std::snprintf(line, sizeof(line), "  %-16s %s\n", name.c_str(),
                  s->description.c_str());
    out << line;
  }
  return 0;
}

}  // namespace

int RunRunCommand(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err) {
  std::string scenario_name;
  osrunner::RunOptions options;
  std::string out_prefix;
  for (const std::string& arg : args) {
    if (arg == "--list") {
      return ListScenarios(out);
    } else if (const auto v = FlagValue(arg, "--trials=")) {
      try {
        options.trials = std::stoi(*v);
      } catch (const std::exception&) {
        err << "osprof_tool run: bad --trials value '" << *v << "'\n";
        return 1;
      }
    } else if (const auto v = FlagValue(arg, "--jobs=")) {
      try {
        options.jobs = std::stoi(*v);
      } catch (const std::exception&) {
        err << "osprof_tool run: bad --jobs value '" << *v << "'\n";
        return 1;
      }
    } else if (const auto v = FlagValue(arg, "--out=")) {
      out_prefix = *v;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "osprof_tool run: unknown flag '" << arg << "'\n" << kRunUsage;
      return 1;
    } else if (scenario_name.empty()) {
      scenario_name = arg;
    } else {
      err << kRunUsage;
      return 1;
    }
  }
  if (scenario_name.empty()) {
    err << kRunUsage;
    return 1;
  }
  const osrunner::Scenario* scenario =
      osrunner::BuiltinScenarios().Find(scenario_name);
  if (scenario == nullptr) {
    err << "osprof_tool run: unknown scenario '" << scenario_name
        << "'; available:\n";
    ListScenarios(err);
    return 1;
  }
  if (options.trials <= 0) {
    err << "osprof_tool run: --trials must be positive\n";
    return 1;
  }

  osrunner::RunResult result;
  try {
    result = osrunner::RunScenario(*scenario, options);
  } catch (const std::exception& e) {
    err << "osprof_tool run: " << e.what() << "\n";
    return 2;
  }

  out << scenario->name << ": " << scenario->description << "\n";
  char line[200];
  std::snprintf(line, sizeof(line),
                "%d trial(s) on %d job(s) in %.3f s wall (base seed %llu)\n",
                result.options.trials, result.options.jobs,
                result.wall_seconds,
                static_cast<unsigned long long>(scenario->kernel.seed));
  out << line;
  for (const osrunner::TrialResult& t : result.trials) {
    std::snprintf(line, sizeof(line),
                  "  trial %d: seed %llu, %s simulated, %.3f s wall\n",
                  t.trial, static_cast<unsigned long long>(t.seed),
                  osprof::FormatSeconds(static_cast<double>(t.sim_cycles) /
                                        osprof::kPaperCpuHz)
                      .c_str(),
                  t.wall_seconds);
    out << line;
  }

  for (const auto& [layer, lr] : result.layers) {
    out << "\n[" << layer << "] merged over " << result.options.trials
        << " trial(s):\n";
    out << osrunner::RenderDispersion(lr, result.options.trials);
    if (!out_prefix.empty()) {
      const std::string path = out_prefix + "." + layer + ".prof";
      std::ofstream file(path);
      if (!file) {
        err << "osprof_tool run: cannot write " << path << "\n";
        return 2;
      }
      lr.merged.Serialize(file);
      out << "wrote " << path << "\n";
    }
  }

  if (!out_prefix.empty()) {
    std::map<std::string, osprof::LayeredProfileSet> layered;
    for (const auto& [layer, lr] : result.layers) {
      if (!lr.layered.empty()) {
        layered.emplace(layer, lr.layered);
      }
    }
    if (!layered.empty()) {
      const std::string path = out_prefix + ".layers";
      std::ofstream file(path);
      if (!file) {
        err << "osprof_tool run: cannot write " << path << "\n";
        return 2;
      }
      osprof::SerializeLayers(layered, file);
      out << "wrote " << path << "\n";
    }
  }
  return 0;
}

}  // namespace ostools
