#include "src/tools/lint_command.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/lint/lint.h"

namespace ostools {
namespace {

constexpr const char* kLintUsage =
    "usage: osprof_tool lint [paths...] [--rules=r1,r2] [--json=FILE]\n"
    "       osprof_tool lint --list-rules\n"
    "  paths          files or directories (default: src tests bench)\n"
    "  --rules=...    comma list of rules to run (default: all)\n"
    "  --json=FILE    write the osprof-lint-v1 report to FILE\n"
    "  --list-rules   print the rule names and exit\n"
    "suppress a finding with: // osprof-lint: allow(<rule>)\n";

std::optional<std::string> FlagValue(const std::string& arg,
                                     const std::string& prefix) {
  if (arg.rfind(prefix, 0) != 0) {
    return std::nullopt;
  }
  return arg.substr(prefix.size());
}

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

}  // namespace

int RunLintCommand(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err) {
  std::vector<std::string> paths;
  oslint::LintConfig config;
  std::string json_path;

  for (const std::string& arg : args) {
    if (arg == "--list-rules") {
      for (const std::string& rule : oslint::AllRules()) {
        out << rule << "\n";
      }
      return 0;
    }
    if (auto v = FlagValue(arg, "--rules=")) {
      config.rules = SplitCommas(*v);
      const std::vector<std::string> known = oslint::AllRules();
      for (const std::string& rule : config.rules) {
        if (std::find(known.begin(), known.end(), rule) == known.end()) {
          err << "osprof_tool lint: unknown rule '" << rule << "'\n"
              << kLintUsage;
          return 1;
        }
      }
      continue;
    }
    if (auto v = FlagValue(arg, "--json=")) {
      json_path = *v;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      err << "osprof_tool lint: unknown flag '" << arg << "'\n" << kLintUsage;
      return 1;
    }
    paths.push_back(arg);
  }

  if (paths.empty()) {
    paths = {"src", "tests", "bench"};
  }

  const oslint::LintRun run = oslint::LintPaths(paths, config);

  if (!json_path.empty()) {
    std::ofstream json_out(json_path);
    if (!json_out) {
      err << "osprof_tool lint: cannot write " << json_path << "\n";
      return 2;
    }
    json_out << oslint::FindingsJson(run).Dump();
  }

  const bool io_error =
      std::any_of(run.findings.begin(), run.findings.end(),
                  [](const oslint::Finding& f) { return f.rule == "io-error"; });

  out << oslint::RenderFindings(run.findings);
  out << run.files_scanned << " file(s) scanned, " << run.findings.size()
      << " finding(s)\n";
  if (io_error) {
    return 2;
  }
  return run.findings.empty() ? 0 : 3;
}

}  // namespace ostools
