// The `osprof_tool layers` subcommand: run a scenario on the multi-trial
// runner and report the exact layered decomposition of every profiled
// operation's latency (self / fs / driver / net / lock-wait / run-queue),
// as an ASCII stacked view and optionally as osprof-layers-v1 JSON.

#ifndef OSPROF_SRC_TOOLS_LAYERS_COMMAND_H_
#define OSPROF_SRC_TOOLS_LAYERS_COMMAND_H_

#include <ostream>
#include <string>
#include <vector>

namespace ostools {

// args are the tokens after "layers":
//   layers <scenario> [--trials=N] [--jobs=J] [--json=FILE] [--out=FILE]
// --json writes the machine-readable decomposition; --out writes the
// serialized `.layers` form (the gate's golden format).
// Returns the process exit code (0 ok, 1 usage, 2 runtime failure).
int RunLayersCommand(const std::vector<std::string>& args, std::ostream& out,
                     std::ostream& err);

}  // namespace ostools

#endif  // OSPROF_SRC_TOOLS_LAYERS_COMMAND_H_
