// The `osprof_tool run` subcommand: execute a named scenario on the
// multi-trial runner (src/runner) and report merged profiles plus
// cross-trial dispersion.

#ifndef OSPROF_SRC_TOOLS_RUN_COMMAND_H_
#define OSPROF_SRC_TOOLS_RUN_COMMAND_H_

#include <ostream>
#include <string>
#include <vector>

namespace ostools {

// args are the tokens after "run":
//   run --list
//   run <scenario> [--trials=N] [--jobs=J] [--out=PREFIX]
// --out serializes each merged layer to PREFIX.<layer>.prof.
// Returns the process exit code (0 ok, 1 usage, 2 runtime failure).
int RunRunCommand(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err);

}  // namespace ostools

#endif  // OSPROF_SRC_TOOLS_RUN_COMMAND_H_
