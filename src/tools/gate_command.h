// The `osprof_tool gate` subcommand: the profile-regression gate.
//
// The paper's automated analysis tool (§3.2, §5.3) exists to compare
// complete profile sets and flag meaningful differences.  The gate turns
// that offline method into CI infrastructure: it re-runs a named scenario
// on the multi-trial runner, scores the merged per-layer profiles against
// committed golden baselines with the §5.3 raters (EMD, Chi-square,
// total-ops, total-latency), prints a rater-by-rater verdict, and exits
// non-zero when any rater flags a regression.  `--update` regenerates the
// golden files instead (for intentional behaviour changes).
//
// Scenario runs are fully deterministic for a fixed (scenario, trials)
// pair -- the runner seeds trial t with base+t and merges in trial order
// -- so a clean gate means every rater scores the measured profiles at
// distance 0 from the goldens.

#ifndef OSPROF_SRC_TOOLS_GATE_COMMAND_H_
#define OSPROF_SRC_TOOLS_GATE_COMMAND_H_

#include <ostream>
#include <string>
#include <vector>

namespace ostools {

// args are the tokens after "gate":
//   gate <scenario> [--baseline=PREFIX] [--raters=emd,chi2,ops,latency]
//                   [--threshold=X] [--trials=N] [--jobs=J] [--json=FILE]
//                   [--update]
//   gate --list
// The baseline PREFIX defaults to "tests/golden/<scenario>"; each profiled
// layer reads/writes PREFIX.<layer>.prof.  Exit codes:
//   0  every rater passed on every layer (or --update wrote new goldens)
//   1  usage error
//   2  runtime failure, unknown scenario, or missing/corrupt baseline
//   3  regression: at least one rater flagged at least one operation
int RunGateCommand(const std::vector<std::string>& args, std::ostream& out,
                   std::ostream& err);

}  // namespace ostools

#endif  // OSPROF_SRC_TOOLS_GATE_COMMAND_H_
