// The `osprof_tool noise` subcommand: run a noise scenario's tracer loop
// on one simulated machine and print the rtla/osnoise-style per-task
// interference table (runtime, noise, %available, preemptions, migrations,
// timer ticks, run-queue wait) plus the §3.3 Equation 3 preemption check.

#ifndef OSPROF_SRC_TOOLS_NOISE_COMMAND_H_
#define OSPROF_SRC_TOOLS_NOISE_COMMAND_H_

#include <ostream>
#include <string>
#include <vector>

namespace ostools {

// args are the tokens after "noise":
//   noise [scenario]
// The scenario must carry a NoiseSpec workload (default: "noise").
// Returns the process exit code (0 ok, 1 usage, 2 runtime failure).
int RunNoiseCommand(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err);

}  // namespace ostools

#endif  // OSPROF_SRC_TOOLS_NOISE_COMMAND_H_
