#include "src/net/nfs.h"

#include <algorithm>
#include <stdexcept>

#include "src/fs/ext2fs.h"
#include "src/fs/page_cache.h"

namespace osnet {
namespace {

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start < path.size()) {
    const std::size_t slash = path.find('/', start);
    const std::size_t end = slash == std::string::npos ? path.size() : slash;
    if (end > start) {
      parts.push_back(path.substr(start, end - start));
    }
    start = end + 1;
  }
  return parts;
}

}  // namespace

NfsMount::NfsMount(osim::Kernel* kernel, osfs::Vfs* server_fs,
                   NfsConfig config)
    : kernel_(kernel),
      server_fs_(server_fs),
      config_(config),
      c2s_(kernel, config.net, "client", &trace_),
      s2c_(kernel, config.net, "server", &trace_) {}

void NfsMount::SetProfiler(osprofilers::SimProfiler* profiler) {
  profiler_ = profiler;
  if (profiler_ == nullptr) {
    return;
  }
  probes_.lookup = profiler_->Resolve("lookup");
  probes_.getattr = profiler_->Resolve("getattr");
  probes_.nfs_read = profiler_->Resolve("nfs_read");
  probes_.nfs_write = profiler_->Resolve("nfs_write");
  probes_.nfs_readdir = profiler_->Resolve("nfs_readdir");
  probes_.commit = profiler_->Resolve("commit");
  probes_.nfs_create = profiler_->Resolve("nfs_create");
  probes_.nfs_remove = profiler_->Resolve("nfs_remove");
  probes_.open = profiler_->Resolve("open");
  probes_.close = profiler_->Resolve("close");
  probes_.read = profiler_->Resolve("read");
  probes_.write = profiler_->Resolve("write");
  probes_.llseek = profiler_->Resolve("llseek");
  probes_.readdir = profiler_->Resolve("readdir");
  probes_.fsync = profiler_->Resolve("fsync");
  probes_.create = profiler_->Resolve("create");
  probes_.unlink = profiler_->Resolve("unlink");
  probes_.stat = profiler_->Resolve("stat");
}

NfsMount::ClientFile& NfsMount::file(int fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= fds_.size() ||
      !fds_[static_cast<std::size_t>(fd)].in_use) {
    throw std::invalid_argument("NfsMount: bad file descriptor");
  }
  return fds_[static_cast<std::size_t>(fd)];
}

int NfsMount::AllocFd() {
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    if (!fds_[i].in_use) {
      fds_[i] = ClientFile{};
      fds_[i].in_use = true;
      return static_cast<int>(i);
    }
  }
  fds_.emplace_back();
  fds_.back().in_use = true;
  return static_cast<int>(fds_.size() - 1);
}

bool NfsMount::AttrFresh(const std::string& path) const {
  auto it = attr_cache_.find(path);
  return it != attr_cache_.end() &&
         kernel_->now() - it->second.fetched_at <= config_.attr_cache_timeout;
}

Task<void> NfsMount::Call(osprof::ProbeHandle probe, const std::string& op,
                          std::uint32_t reply_bytes, Task<void> server_work,
                          Rpc* rpc) {
  ++rpcs_;
  const Cycles start = kernel_->ReadTsc();
  co_await kernel_->Cpu(config_.client_op_cpu);
  rpc->done = std::make_unique<osim::WaitQueue>(kernel_, osprof::kLayerNet);
  // Wrap the server work in a handler thread spawned at request arrival;
  // the reply is a single burst whose final segment completes the RPC.
  struct Holder {
    Task<void> work;
  };
  auto holder = std::make_shared<Holder>();
  holder->work = std::move(server_work);
  c2s_.Send(config_.request_bytes, PacketKind::kRequest, op + " call",
            [this, op, reply_bytes, rpc, holder] {
              auto handler = [](NfsMount* self, std::string op_name,
                                std::uint32_t bytes, Rpc* r,
                                std::shared_ptr<Holder> h) -> Task<void> {
                co_await self->kernel_->Cpu(self->config_.server_op_cpu);
                co_await std::move(h->work);
                self->s2c_.SendSegmented(
                    bytes, op_name + " reply",
                    [r](int index, int total) {
                      if (index == total - 1) {
                        r->complete = true;
                        r->done->WakeAll();
                      }
                    });
              };
              kernel_->Spawn("nfsd:" + op,
                             handler(this, op, reply_bytes, rpc, holder));
            });
  while (!rpc->complete) {
    co_await rpc->done->Wait();
  }
  if (profiler_ != nullptr) {
    profiler_->Record(probe, kernel_->ReadTsc() - start);
  }
}

// --- Server handlers ----------------------------------------------------------

Task<void> NfsMount::ServerGetattr(std::string path, Rpc* rpc) {
  rpc->attr = co_await server_fs_->Stat(path);
}

Task<void> NfsMount::ServerReaddir(std::string path, std::uint64_t cookie,
                                   Rpc* rpc) {
  const int fd = co_await server_fs_->Open(path, false);
  if (fd < 0) {
    rpc->eof = true;
    co_return;
  }
  (void)co_await server_fs_->Llseek(fd, cookie);
  // Collect up to entries_per_readdir entries starting at the cookie.
  while (rpc->names.size() <
         static_cast<std::size_t>(config_.entries_per_readdir)) {
    const osfs::DirentBatch batch = co_await server_fs_->Readdir(fd);
    if (batch.names.empty()) {
      rpc->eof = true;
      break;
    }
    for (const std::string& name : batch.names) {
      rpc->names.push_back(name);
    }
    if (batch.at_end) {
      rpc->eof = true;
      break;
    }
  }
  rpc->cookie = cookie + rpc->names.size() * osfs::kDirentBytes;
  co_await server_fs_->Close(fd);
}

Task<void> NfsMount::ServerRead(std::string path, std::uint64_t offset,
                                std::uint64_t bytes, Rpc* rpc) {
  const int fd = co_await server_fs_->Open(path, false);
  if (fd < 0) {
    rpc->result = -1;
    co_return;
  }
  (void)co_await server_fs_->Llseek(fd, offset);
  rpc->result = co_await server_fs_->Read(fd, bytes);
  co_await server_fs_->Close(fd);
}

Task<void> NfsMount::ServerWrite(std::string path, std::uint64_t offset,
                                 std::uint64_t bytes, Rpc* rpc) {
  const int fd = co_await server_fs_->Open(path, false);
  if (fd < 0) {
    rpc->result = -1;
    co_return;
  }
  (void)co_await server_fs_->Llseek(fd, offset);
  rpc->result = co_await server_fs_->Write(fd, bytes);
  co_await server_fs_->Close(fd);
}

Task<void> NfsMount::ServerCreate(std::string path, Rpc* rpc) {
  const int fd = co_await server_fs_->Create(path);
  rpc->result = fd;
  if (fd >= 0) {
    co_await server_fs_->Close(fd);
  }
}

Task<void> NfsMount::ServerUnlink(std::string path, Rpc* rpc) {
  co_await server_fs_->Unlink(path);
  rpc->result = 0;
}

Task<void> NfsMount::ServerCommit(std::string path, Rpc* rpc) {
  const int fd = co_await server_fs_->Open(path, false);
  if (fd >= 0) {
    co_await server_fs_->Fsync(fd);
    co_await server_fs_->Close(fd);
  }
  rpc->result = 0;
}

// --- Path walking --------------------------------------------------------------

Task<void> NfsMount::WalkPath(const std::string& path) {
  // One LOOKUP per component not in the dentry cache: the NFS lookup
  // storm.  Each lookup also refreshes the component's attributes.
  const std::vector<std::string> parts = SplitPath(path);
  std::string prefix;
  for (const std::string& part : parts) {
    prefix += "/" + part;
    auto it = dentry_cache_.find(prefix);
    if (it != dentry_cache_.end() &&
        kernel_->now() - it->second <= config_.dentry_cache_timeout) {
      continue;
    }
    ++lookups_;
    Rpc rpc;
    co_await Call(probes_.lookup, "lookup", config_.small_reply_bytes,
                  ServerGetattr(prefix, &rpc), &rpc);
    dentry_cache_[prefix] = kernel_->now();
    attr_cache_[prefix] = CachedAttr{rpc.attr, kernel_->now()};
  }
}

// --- Vfs operations --------------------------------------------------------------

Task<int> NfsMount::Open(const std::string& path, bool direct_io) {
  (void)direct_io;
  const Cycles start = kernel_->ReadTsc();
  co_await kernel_->Cpu(config_.client_op_cpu);
  co_await WalkPath(path);
  if (!AttrFresh(path)) {
    Rpc rpc;
    co_await Call(probes_.getattr, "getattr", config_.small_reply_bytes,
                  ServerGetattr(path, &rpc), &rpc);
    attr_cache_[path] = CachedAttr{rpc.attr, kernel_->now()};
  } else {
    ++attr_hits_;
  }
  const int fd = AllocFd();
  ClientFile& f = file(fd);
  f.path = path;
  f.attr = attr_cache_[path].attr;
  if (profiler_ != nullptr) {
    profiler_->Record(probes_.open, kernel_->ReadTsc() - start);
  }
  co_return fd;
}

Task<void> NfsMount::Close(int fd) {
  const Cycles start = kernel_->ReadTsc();
  co_await kernel_->Cpu(config_.client_op_cpu / 2);
  file(fd).in_use = false;
  if (profiler_ != nullptr) {
    profiler_->Record(probes_.close, kernel_->ReadTsc() - start);
  }
}

Task<std::int64_t> NfsMount::Read(int fd, std::uint64_t bytes) {
  const Cycles start = kernel_->ReadTsc();
  ClientFile& f = file(fd);
  std::int64_t result = 0;
  if (f.attr.is_dir || bytes == 0 || f.pos >= f.attr.size) {
    co_await kernel_->Cpu(config_.client_op_cpu / 4);
  } else {
    const std::uint64_t end = std::min(f.attr.size, f.pos + bytes);
    const std::uint64_t first_page = f.pos / osfs::kPageBytes;
    const std::uint64_t last_page = (end - 1) / osfs::kPageBytes;
    for (std::uint64_t page = first_page; page <= last_page; ++page) {
      if (page_cache_.count({f.path, page}) == 0) {
        Rpc rpc;
        co_await Call(probes_.nfs_read, "nfs_read",
                      static_cast<std::uint32_t>(osfs::kPageBytes),
                      ServerRead(f.path, page * osfs::kPageBytes,
                                 osfs::kPageBytes, &rpc),
                      &rpc);
        page_cache_.insert({f.path, page});
      }
      co_await kernel_->Cpu(1'400);  // Copy-out.
    }
    result = static_cast<std::int64_t>(end - f.pos);
    f.pos = end;
  }
  if (profiler_ != nullptr) {
    profiler_->Record(probes_.read, kernel_->ReadTsc() - start);
  }
  co_return result;
}

Task<std::int64_t> NfsMount::Write(int fd, std::uint64_t bytes) {
  const Cycles start = kernel_->ReadTsc();
  ClientFile& f = file(fd);
  Rpc rpc;
  co_await Call(probes_.nfs_write, "nfs_write", config_.small_reply_bytes,
                ServerWrite(f.path, f.pos, bytes, &rpc), &rpc);
  ClientFile& f2 = file(fd);
  f2.pos += bytes;
  f2.attr.size = std::max(f2.attr.size, f2.pos);
  attr_cache_[f2.path] = CachedAttr{f2.attr, kernel_->now()};
  if (profiler_ != nullptr) {
    profiler_->Record(probes_.write, kernel_->ReadTsc() - start);
  }
  co_return static_cast<std::int64_t>(bytes);
}

Task<std::uint64_t> NfsMount::Llseek(int fd, std::uint64_t pos) {
  const Cycles start = kernel_->ReadTsc();
  co_await kernel_->Cpu(config_.client_op_cpu / 4);
  ClientFile& f = file(fd);
  f.pos = pos;
  if (profiler_ != nullptr) {
    profiler_->Record(probes_.llseek, kernel_->ReadTsc() - start);
  }
  co_return f.pos;
}

Task<osfs::DirentBatch> NfsMount::Readdir(int fd) {
  const Cycles start = kernel_->ReadTsc();
  ClientFile& f = file(fd);
  osfs::DirentBatch batch;
  if (!f.attr.is_dir) {
    batch.at_end = true;
    co_await kernel_->Cpu(config_.client_op_cpu / 4);
  } else {
    while (f.dir_served >= f.dir_names.size() && !f.dir_eof) {
      Rpc rpc;
      const auto reply_bytes = static_cast<std::uint32_t>(
          config_.entries_per_readdir * config_.bytes_per_entry);
      co_await Call(probes_.nfs_readdir, "nfs_readdir", reply_bytes,
                    ServerReaddir(f.path, f.dir_cookie, &rpc), &rpc);
      ClientFile& f2 = file(fd);
      for (std::string& name : rpc.names) {
        f2.dir_names.push_back(std::move(name));
      }
      f2.dir_cookie = rpc.cookie;
      f2.dir_eof = rpc.eof;
    }
    ClientFile& f3 = file(fd);
    if (f3.dir_served >= f3.dir_names.size()) {
      batch.at_end = true;
      co_await kernel_->Cpu(90);
    } else {
      const std::size_t take =
          std::min(static_cast<std::size_t>(config_.entries_per_readdir),
                   f3.dir_names.size() - f3.dir_served);
      for (std::size_t i = 0; i < take; ++i) {
        batch.names.push_back(f3.dir_names[f3.dir_served + i]);
      }
      f3.dir_served += take;
      batch.at_end = f3.dir_served >= f3.dir_names.size() && f3.dir_eof;
      co_await kernel_->Cpu(500 + 40 * take);
    }
  }
  if (profiler_ != nullptr) {
    profiler_->Record(probes_.readdir, kernel_->ReadTsc() - start);
  }
  co_return batch;
}

Task<void> NfsMount::Fsync(int fd) {
  const Cycles start = kernel_->ReadTsc();
  const std::string path = file(fd).path;
  Rpc rpc;
  co_await Call(probes_.commit, "commit", config_.small_reply_bytes,
                ServerCommit(path, &rpc), &rpc);
  if (profiler_ != nullptr) {
    profiler_->Record(probes_.fsync, kernel_->ReadTsc() - start);
  }
}

Task<int> NfsMount::Create(const std::string& path) {
  const Cycles start = kernel_->ReadTsc();
  co_await WalkPath(path.substr(0, path.find_last_of('/')));
  Rpc rpc;
  co_await Call(probes_.nfs_create, "nfs_create", config_.small_reply_bytes,
                ServerCreate(path, &rpc), &rpc);
  if (rpc.result < 0) {
    if (profiler_ != nullptr) {
      profiler_->Record(probes_.create, kernel_->ReadTsc() - start);
    }
    co_return -1;
  }
  attr_cache_[path] = CachedAttr{osfs::FileAttr{0, false}, kernel_->now()};
  dentry_cache_[path] = kernel_->now();
  const int fd = AllocFd();
  ClientFile& f = file(fd);
  f.path = path;
  f.attr = attr_cache_[path].attr;
  if (profiler_ != nullptr) {
    profiler_->Record(probes_.create, kernel_->ReadTsc() - start);
  }
  co_return fd;
}

Task<void> NfsMount::Unlink(const std::string& path) {
  const Cycles start = kernel_->ReadTsc();
  Rpc rpc;
  co_await Call(probes_.nfs_remove, "nfs_remove", config_.small_reply_bytes,
                ServerUnlink(path, &rpc), &rpc);
  attr_cache_.erase(path);
  dentry_cache_.erase(path);
  if (profiler_ != nullptr) {
    profiler_->Record(probes_.unlink, kernel_->ReadTsc() - start);
  }
}

Task<osfs::FileAttr> NfsMount::Stat(const std::string& path) {
  const Cycles start = kernel_->ReadTsc();
  co_await kernel_->Cpu(config_.client_op_cpu / 4);
  if (!AttrFresh(path)) {
    co_await WalkPath(path);
    if (!AttrFresh(path)) {
      Rpc rpc;
      co_await Call(probes_.getattr, "getattr", config_.small_reply_bytes,
                    ServerGetattr(path, &rpc), &rpc);
      attr_cache_[path] = CachedAttr{rpc.attr, kernel_->now()};
    }
  } else {
    ++attr_hits_;
  }
  const osfs::FileAttr attr = attr_cache_[path].attr;
  if (profiler_ != nullptr) {
    profiler_->Record(probes_.stat, kernel_->ReadTsc() - start);
  }
  co_return attr;
}

}  // namespace osnet
