// The distributed lock manager: OCFS2-style cluster-wide resource locks.
//
// Every named resource (ClusterFs uses "inode:<n>") is *mastered* on one
// node, chosen by hashing the name; the master keeps the authoritative
// grant table and a FIFO queue of waiters.  Each node additionally runs a
// DLM daemon task that owns that node's *lock cache*: once a node holds a
// grant it keeps it across client operations -- repeated local acquires
// are cache hits costing nothing on the wire -- until a conflicting
// request elsewhere makes the master send a BAST (blocking asynchronous
// callback, OCFS2's term) asking the holder to downgrade.  An exclusive
// holder flushes dirty state through the registered downgrade hook before
// answering, so by the time the waiter's grant arrives, the shared disk
// is current.  Shared-write workloads therefore ping-pong: every acquire
// pays request + BAST + peer flush + grant, and the client-side stall
// splits between kLayerNet (the wire round trip to the master) and
// kLayerLockWait (queued behind the peer's revoke).
//
// Concurrency discipline: all lock-table state lives in osim::Shared<T>
// cells owned by exactly one daemon task -- clients and remote nodes
// reach it only by posting inbox messages (local: plain FIFO push;
// remote: a Fabric send with real wire cost).  Grants and releases are
// reported to the kernel's lock-order and race trackers in *client*
// context under one cluster-wide identity per resource name, so an
// acquired-while-held edge spanning two nodes lands in the same merged
// lock graph as local semaphores, and an EX-grant handoff is a
// happens-before edge ordering the nodes' data accesses for SimRace.

#ifndef OSPROF_SRC_NET_DLM_H_
#define OSPROF_SRC_NET_DLM_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "src/core/layered.h"
#include "src/net/fabric.h"
#include "src/sim/kernel.h"
#include "src/sim/race_tracker.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace osnet {

// Lock modes, ordered by strength.  kProtectedRead grants are compatible
// with each other; kExclusive is compatible with nothing.
enum class DlmMode { kNull = 0, kProtectedRead = 1, kExclusive = 2 };

const char* DlmModeName(DlmMode mode);
bool DlmCompatible(DlmMode a, DlmMode b);

struct DlmConfig {
  // Wire sizes of the protocol messages (request/reply carry the resource
  // name and modes; BASTs are a little smaller).
  std::uint32_t request_bytes = 192;
  std::uint32_t reply_bytes = 192;
  std::uint32_t grant_bytes = 192;
  std::uint32_t bast_bytes = 160;
  std::uint32_t downgrade_bytes = 176;
  // Client-side cost of building a request and looking up the lockres.
  osim::Cycles request_cpu = 1'800;
  // Daemon-side cost of servicing one protocol message.
  osim::Cycles service_cpu = 2'200;
};

class Dlm {
 public:
  // The hook a node registers to flush dirty state for `resource` before
  // an exclusive grant is surrendered (ClusterFs writes back the inode's
  // dirty pages).  Runs in the node's daemon task; must not call back
  // into the Dlm.
  using DowngradeHook =
      std::function<osim::Task<void>(const std::string& resource)>;

  Dlm(osim::Kernel* kernel, Fabric* fabric, DlmConfig config = {});

  void SetDowngradeHook(int node, DowngradeHook hook);

  // Spawns one daemon task per node ("dlmd<n>", pinned to node n).
  void Start();

  // Posts a stop message to every daemon; they exit after draining their
  // inboxes.  Call from task or kernel context once no client can issue
  // further acquires (the runner's controller task does, after joining
  // the workload), or RunUntilThreadsFinish never returns.
  void Shutdown();

  // Acquires `resource` in `mode` for the calling task's node.  Must run
  // in task context.  Cache hits complete after the request CPU cost;
  // misses go to the master and the caller parks -- first for the wire
  // round trip (kLayerNet when the master is remote), then, if queued
  // behind conflicting holders, for the revoke to complete
  // (kLayerLockWait).
  osim::Task<void> Acquire(const std::string& resource, DlmMode mode);

  // Releases one acquisition.  The node keeps the cached grant until the
  // master revokes it; a release only triggers wire traffic when a
  // revoke is pending and this was the last local user.
  void Release(const std::string& resource, DlmMode mode);

  // Master placement (FNV-1a over the name, mod nodes): deterministic
  // and committed to by the goldens, so not std::hash.
  int MasterOf(const std::string& resource) const;

  // --- Counters ---------------------------------------------------------
  std::uint64_t acquires() const { return acquires_; }
  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t remote_requests() const { return remote_requests_; }
  std::uint64_t queued_waits() const { return queued_waits_; }
  std::uint64_t basts_sent() const { return basts_sent_; }
  std::uint64_t downgrades() const { return downgrades_; }

 private:
  enum class MsgKind {
    kAcquire,    // local client -> local daemon: run the acquire path
    kRelease,    // local client -> local daemon: drop one user
    kRequest,    // daemon -> master: grant me `mode`
    kReply,      // master -> daemon: granted now, or queued
    kGrant,      // master -> daemon: queued request now granted
    kBast,       // master -> holder: downgrade to `mode`
    kDowngrade,  // holder -> master: done, my mode is now `mode`
    kStop,       // controller -> daemon: exit
  };

  // Client-side completion state for one Acquire, owned by the client
  // coroutine frame; the daemon signals through it.
  struct AcquireState {
    AcquireState(osim::Kernel* kernel, bool master_is_local)
        : reply(kernel, master_is_local ? osprof::kLayerLockWait
                                        : osprof::kLayerNet),
          grant(kernel, osprof::kLayerLockWait) {}
    osim::WaitQueue reply;  // Phase 1: the master's immediate answer.
    osim::WaitQueue grant;  // Phase 2: queued behind a revoke.
    bool replied = false;
    bool granted = false;
  };

  struct Msg {
    MsgKind kind = MsgKind::kStop;
    std::string resource;
    DlmMode mode = DlmMode::kNull;
    int from = -1;               // Originating node.
    AcquireState* ctx = nullptr; // Echoed through kRequest/kReply/kGrant.
    bool granted = false;        // kReply payload.
  };

  // One node's view of a resource it holds (or is acquiring).
  struct CachedRes {
    DlmMode mode = DlmMode::kNull;
    int users = 0;               // Active local acquisitions.
    bool revoke_pending = false; // A BAST asked for `revoke_target`.
    DlmMode revoke_target = DlmMode::kNull;
    bool downgrading = false;    // Flush in progress.
  };

  struct Waiter {
    int node = -1;
    DlmMode mode = DlmMode::kNull;
    AcquireState* ctx = nullptr;  // Only meaningful on the waiter's node.
  };

  // The master's authoritative record of a resource.
  struct MasterRes {
    std::map<int, DlmMode> granted;  // node -> mode currently granted.
    std::deque<Waiter> queue;        // FIFO; no starvation.
    std::set<int> bast_pending;      // Holders already asked to downgrade.
  };

  // Everything one daemon owns.  The inbox itself is scheduler plumbing
  // (push + wake is atomic within one simulated turn); the lock tables
  // are Shared so the race tracker checks the single-daemon-writer
  // discipline.
  struct NodeState {
    NodeState(osim::Kernel& kernel)
        : inbox_wait(&kernel),
          cache(kernel, "dlm.cache"),
          mastered(kernel, "dlm.master") {}
    std::deque<Msg> inbox;
    osim::WaitQueue inbox_wait;
    osim::Shared<std::map<std::string, CachedRes>> cache;
    osim::Shared<std::map<std::string, MasterRes>> mastered;
    DowngradeHook hook;
  };

  osim::Task<void> DaemonLoop(int node);
  osim::Task<void> HandleAcquire(int node, Msg m);
  osim::Task<void> HandleRelease(int node, Msg m);
  osim::Task<void> HandleRequestAtMaster(int node, Msg m);
  osim::Task<void> HandleDowngradeAtMaster(int node, Msg m);
  osim::Task<void> HandleBast(int node, Msg m);

  // Master-side grant decision: grants immediately when `mode` is
  // compatible with every *other* node's grant and nobody is queued;
  // otherwise queues and sends BASTs.  Returns whether it granted.
  bool MasterTryGrant(int master, const std::string& resource, DlmMode mode,
                      int from, AcquireState* ctx);
  // Re-examines the queue after a downgrade arrived; grants in FIFO
  // order while the head stays compatible.
  void MasterPromote(int master, const std::string& resource);
  void SendBasts(int master, const std::string& resource, MasterRes& res);

  // Applies a grant on the owning node's cache and completes the client.
  void ApplyGrant(int node, const std::string& resource, DlmMode mode,
                  AcquireState* ctx);
  // Marks an Acquire complete and wakes the parked client.
  static void ApplyGrantCompleted(AcquireState* ctx);
  osim::Task<void> StartDowngrade(int node, const std::string& resource);

  void PostTo(int node, Msg m);  // Push + wake, any context.
  void SendWire(int from, int to, std::uint32_t bytes,
                const std::string& label, Msg m);

  // Cluster-wide lock identity for the trackers: one stable (pointer,
  // name) pair per resource, shared by every node, so cross-node
  // acquired-while-held edges merge by name in the lock graph.
  std::pair<const void*, const std::string*> Ident(
      const std::string& resource);

  osim::Kernel* kernel_;
  Fabric* fabric_;
  DlmConfig config_;
  std::deque<NodeState> nodes_;
  std::map<std::string, char> idents_;
  std::uint64_t acquires_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t remote_requests_ = 0;
  std::uint64_t queued_waits_ = 0;
  std::uint64_t basts_sent_ = 0;
  std::uint64_t downgrades_ = 0;
};

}  // namespace osnet

#endif  // OSPROF_SRC_NET_DLM_H_
