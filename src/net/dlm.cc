#include "src/net/dlm.h"

#include <stdexcept>
#include <utility>

namespace osnet {

namespace {

DlmMode MaxMode(DlmMode a, DlmMode b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

DlmMode MinMode(DlmMode a, DlmMode b) {
  return static_cast<int>(a) <= static_cast<int>(b) ? a : b;
}

bool AtLeast(DlmMode held, DlmMode wanted) {
  return static_cast<int>(held) >= static_cast<int>(wanted);
}

}  // namespace

const char* DlmModeName(DlmMode mode) {
  switch (mode) {
    case DlmMode::kNull:
      return "NL";
    case DlmMode::kProtectedRead:
      return "PR";
    case DlmMode::kExclusive:
      return "EX";
  }
  return "?";
}

bool DlmCompatible(DlmMode a, DlmMode b) {
  if (a == DlmMode::kNull || b == DlmMode::kNull) {
    return true;
  }
  return a == DlmMode::kProtectedRead && b == DlmMode::kProtectedRead;
}

Dlm::Dlm(osim::Kernel* kernel, Fabric* fabric, DlmConfig config)
    : kernel_(kernel), fabric_(fabric), config_(config) {
  for (int n = 0; n < fabric->num_nodes(); ++n) {
    nodes_.emplace_back(*kernel);
  }
}

void Dlm::SetDowngradeHook(int node, DowngradeHook hook) {
  nodes_[static_cast<std::size_t>(node)].hook = std::move(hook);
}

void Dlm::Start() {
  for (int n = 0; n < static_cast<int>(nodes_.size()); ++n) {
    kernel_->SpawnOn(n, "dlmd" + std::to_string(n), DaemonLoop(n));
  }
}

void Dlm::Shutdown() {
  for (int n = 0; n < static_cast<int>(nodes_.size()); ++n) {
    PostTo(n, Msg{MsgKind::kStop, "", DlmMode::kNull, n, nullptr, false});
  }
}

int Dlm::MasterOf(const std::string& resource) const {
  // FNV-1a: committed goldens depend on the placement, so no std::hash.
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : resource) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return static_cast<int>(h % nodes_.size());
}

std::pair<const void*, const std::string*> Dlm::Ident(
    const std::string& resource) {
  const auto it = idents_.try_emplace("dlm:" + resource, '\0').first;
  return {static_cast<const void*>(&it->second), &it->first};
}

void Dlm::PostTo(int node, Msg m) {
  NodeState& ns = nodes_[static_cast<std::size_t>(node)];
  ns.inbox.push_back(std::move(m));
  ns.inbox_wait.WakeOne();
}

void Dlm::SendWire(int from, int to, std::uint32_t bytes,
                   const std::string& label, Msg m) {
  // Same-node sends short-circuit inside the fabric; either way the
  // message lands in the target daemon's inbox, so every table mutation
  // stays in daemon context.
  fabric_->Send(from, to, bytes, PacketKind::kRequest, label,
                [this, to, m = std::move(m)]() mutable {
                  PostTo(to, std::move(m));
                });
}

osim::Task<void> Dlm::DaemonLoop(int node) {
  NodeState& ns = nodes_[static_cast<std::size_t>(node)];
  for (;;) {
    if (ns.inbox.empty()) {
      co_await ns.inbox_wait.Wait();
      continue;
    }
    Msg m = std::move(ns.inbox.front());
    ns.inbox.pop_front();
    if (m.kind == MsgKind::kStop) {
      break;
    }
    co_await kernel_->Cpu(config_.service_cpu);
    switch (m.kind) {
      case MsgKind::kAcquire:
        co_await HandleAcquire(node, std::move(m));
        break;
      case MsgKind::kRelease:
        co_await HandleRelease(node, std::move(m));
        break;
      case MsgKind::kRequest:
        co_await HandleRequestAtMaster(node, std::move(m));
        break;
      case MsgKind::kReply:
        if (m.granted) {
          ApplyGrant(node, m.resource, m.mode, m.ctx);
        } else {
          ++queued_waits_;
          m.ctx->replied = true;
          m.ctx->reply.WakeAll();
        }
        break;
      case MsgKind::kGrant:
        ApplyGrant(node, m.resource, m.mode, m.ctx);
        break;
      case MsgKind::kBast:
        co_await HandleBast(node, std::move(m));
        break;
      case MsgKind::kDowngrade:
        co_await HandleDowngradeAtMaster(node, std::move(m));
        break;
      case MsgKind::kStop:
        break;
    }
  }
}

osim::Task<void> Dlm::Acquire(const std::string& resource, DlmMode mode) {
  osim::SimThread* self = kernel_->current();
  if (self == nullptr) {
    throw std::logic_error("Dlm::Acquire outside thread context");
  }
  if (mode == DlmMode::kNull) {
    throw std::invalid_argument("Dlm::Acquire: NL is not an acquirable mode");
  }
  const int node = self->node();
  ++acquires_;
  co_await kernel_->Cpu(config_.request_cpu);
  AcquireState st(kernel_, MasterOf(resource) == node);
  PostTo(node, Msg{MsgKind::kAcquire, resource, mode, node, &st, false});
  while (!st.replied) {
    co_await st.reply.Wait();
  }
  while (!st.granted) {
    co_await st.grant.Wait();
  }
  const auto [id, name] = Ident(resource);
  kernel_->NoteLockAcquired(id, *name);
}

void Dlm::Release(const std::string& resource, DlmMode mode) {
  osim::SimThread* self = kernel_->current();
  if (self == nullptr) {
    throw std::logic_error("Dlm::Release outside thread context");
  }
  const auto [id, name] = Ident(resource);
  (void)name;
  kernel_->NoteLockReleased(id);
  PostTo(self->node(),
         Msg{MsgKind::kRelease, resource, mode, self->node(), nullptr, false});
}

osim::Task<void> Dlm::HandleAcquire(int node, Msg m) {
  NodeState& ns = nodes_[static_cast<std::size_t>(node)];
  {
    auto& cache = OSIM_SHARED_RW(ns.cache);
    CachedRes& r = cache[m.resource];
    if (!r.revoke_pending && !r.downgrading && AtLeast(r.mode, m.mode)) {
      ++r.users;
      ++cache_hits_;
      ApplyGrantCompleted(m.ctx);
      co_return;
    }
  }
  const int master = MasterOf(m.resource);
  if (master == node) {
    if (MasterTryGrant(node, m.resource, m.mode, node, m.ctx)) {
      ApplyGrant(node, m.resource, m.mode, m.ctx);
    } else {
      ++queued_waits_;
      m.ctx->replied = true;
      m.ctx->reply.WakeAll();
    }
  } else {
    ++remote_requests_;
    SendWire(node, master, config_.request_bytes, "dlm.request",
             Msg{MsgKind::kRequest, m.resource, m.mode, node, m.ctx, false});
  }
}

osim::Task<void> Dlm::HandleRequestAtMaster(int node, Msg m) {
  const bool granted =
      MasterTryGrant(node, m.resource, m.mode, m.from, m.ctx);
  SendWire(node, m.from, config_.reply_bytes, "dlm.reply",
           Msg{MsgKind::kReply, m.resource, m.mode, node, m.ctx, granted});
  co_return;
}

osim::Task<void> Dlm::HandleRelease(int node, Msg m) {
  NodeState& ns = nodes_[static_cast<std::size_t>(node)];
  bool downgrade_now = false;
  {
    auto& cache = OSIM_SHARED_RW(ns.cache);
    CachedRes& r = cache[m.resource];
    --r.users;
    downgrade_now = r.users == 0 && r.revoke_pending && !r.downgrading;
  }
  if (downgrade_now) {
    co_await StartDowngrade(node, m.resource);
  }
}

osim::Task<void> Dlm::HandleDowngradeAtMaster(int node, Msg m) {
  NodeState& ns = nodes_[static_cast<std::size_t>(node)];
  {
    auto& tbl = OSIM_SHARED_RW(ns.mastered);
    MasterRes& r = tbl[m.resource];
    if (m.mode == DlmMode::kNull) {
      r.granted.erase(m.from);
    } else {
      r.granted[m.from] = m.mode;
    }
    r.bast_pending.erase(m.from);
  }
  MasterPromote(node, m.resource);
  co_return;
}

osim::Task<void> Dlm::HandleBast(int node, Msg m) {
  NodeState& ns = nodes_[static_cast<std::size_t>(node)];
  bool downgrade_now = false;
  {
    auto& cache = OSIM_SHARED_RW(ns.cache);
    CachedRes& r = cache[m.resource];
    if (r.revoke_pending) {
      r.revoke_target = MinMode(r.revoke_target, m.mode);
    } else {
      r.revoke_pending = true;
      r.revoke_target = m.mode;
    }
    if (AtLeast(r.revoke_target, r.mode)) {
      // Already at or below the target (our downgrade crossed the BAST on
      // the wire): acknowledge with the current mode.
      r.revoke_pending = false;
      SendWire(node, MasterOf(m.resource), config_.downgrade_bytes,
               "dlm.downgrade",
               Msg{MsgKind::kDowngrade, m.resource, r.mode, node, nullptr,
                   false});
      co_return;
    }
    downgrade_now = r.users == 0 && !r.downgrading;
  }
  if (downgrade_now) {
    co_await StartDowngrade(node, m.resource);
  }
}

bool Dlm::MasterTryGrant(int master, const std::string& resource,
                         DlmMode mode, int from, AcquireState* ctx) {
  auto& tbl =
      OSIM_SHARED_RW(nodes_[static_cast<std::size_t>(master)].mastered);
  MasterRes& r = tbl[resource];
  bool ok = r.queue.empty();  // FIFO: never overtake a queued waiter.
  if (ok) {
    for (const auto& [n, g] : r.granted) {
      if (n != from && !DlmCompatible(g, mode)) {
        ok = false;
        break;
      }
    }
  }
  if (ok) {
    DlmMode& g = r.granted[from];
    g = MaxMode(g, mode);
    return true;
  }
  r.queue.push_back(Waiter{from, mode, ctx});
  SendBasts(master, resource, r);
  return false;
}

void Dlm::MasterPromote(int master, const std::string& resource) {
  auto& tbl =
      OSIM_SHARED_RW(nodes_[static_cast<std::size_t>(master)].mastered);
  const auto it = tbl.find(resource);
  if (it == tbl.end()) {
    return;
  }
  MasterRes& r = it->second;
  while (!r.queue.empty()) {
    const Waiter w = r.queue.front();
    bool ok = true;
    for (const auto& [n, g] : r.granted) {
      if (n != w.node && !DlmCompatible(g, w.mode)) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      SendBasts(master, resource, r);
      break;
    }
    r.queue.pop_front();
    DlmMode& g = r.granted[w.node];
    g = MaxMode(g, w.mode);
    if (w.node == master) {
      ApplyGrant(master, resource, w.mode, w.ctx);
    } else {
      SendWire(master, w.node, config_.grant_bytes, "dlm.grant",
               Msg{MsgKind::kGrant, resource, w.mode, master, w.ctx, true});
    }
  }
}

void Dlm::SendBasts(int master, const std::string& resource, MasterRes& res) {
  const Waiter& head = res.queue.front();
  const DlmMode target = head.mode == DlmMode::kExclusive
                             ? DlmMode::kNull
                             : DlmMode::kProtectedRead;
  for (const auto& [n, g] : res.granted) {
    if (n == head.node || DlmCompatible(g, head.mode)) {
      continue;
    }
    if (res.bast_pending.insert(n).second) {
      ++basts_sent_;
      SendWire(master, n, config_.bast_bytes, "dlm.bast",
               Msg{MsgKind::kBast, resource, target, master, nullptr, false});
    }
  }
}

void Dlm::ApplyGrant(int node, const std::string& resource, DlmMode mode,
                     AcquireState* ctx) {
  NodeState& ns = nodes_[static_cast<std::size_t>(node)];
  auto& cache = OSIM_SHARED_RW(ns.cache);
  CachedRes& r = cache[resource];
  r.mode = MaxMode(r.mode, mode);
  ++r.users;
  ApplyGrantCompleted(ctx);
}

void Dlm::ApplyGrantCompleted(AcquireState* ctx) {
  ctx->replied = true;
  ctx->granted = true;
  ctx->reply.WakeAll();
  ctx->grant.WakeAll();
}

osim::Task<void> Dlm::StartDowngrade(int node, const std::string& resource) {
  NodeState& ns = nodes_[static_cast<std::size_t>(node)];
  DlmMode held = DlmMode::kNull;
  DlmMode target = DlmMode::kNull;
  {
    auto& cache = OSIM_SHARED_RW(ns.cache);
    CachedRes& r = cache[resource];
    r.downgrading = true;
    held = r.mode;
    target = r.revoke_target;
  }
  if (held == DlmMode::kExclusive && ns.hook) {
    // Surrendering EX publishes our writes: flush before the master may
    // grant anyone else.  The master cannot re-grant us meanwhile -- the
    // waiter that triggered the BAST stays queued until our downgrade
    // lands -- so the cache entry is stable across this await.
    co_await ns.hook(resource);
  }
  {
    auto& cache = OSIM_SHARED_RW(ns.cache);
    if (target == DlmMode::kNull) {
      cache.erase(resource);
    } else {
      CachedRes& r = cache[resource];
      r.mode = target;
      r.downgrading = false;
      r.revoke_pending = false;
    }
  }
  ++downgrades_;
  SendWire(node, MasterOf(resource), config_.downgrade_bytes, "dlm.downgrade",
           Msg{MsgKind::kDowngrade, resource, target, node, nullptr, false});
}

}  // namespace osnet
