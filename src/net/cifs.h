// CIFS/SMB over the network model (paper §6.4, Figures 10 and 11).
//
// CifsMount implements the osfs::Vfs interface on top of a remote server
// file system, so the same workloads (grep) run unchanged over the
// "network mount".  The protocol machinery reproduces the paper's
// pathology:
//
//  * Directory enumeration returns entries in SMB Find batches.  Each
//    batch is larger than one TCP segment, so it is split into an MSS
//    burst (the "reply + reply continuation 1 + reply continuation 2" of
//    Figure 11).
//  * A WINDOWS client lets the server push `batches_per_transaction`
//    batches per FindFirst/FindNext transaction; the server, however,
//    sends the next "transact continuation" burst only after everything
//    already sent is ACKed.  The client ACKs every second segment
//    immediately but delays the ACK of a trailing odd segment by 200ms --
//    and has nothing else to send -- so each extra burst costs a 200ms
//    stall.  FindFirst/FindNext latencies land in buckets 26-30.
//  * A LINUX client never lets the server push: it issues the next
//    FindNext request immediately, and the request carries the pending
//    ACK, so no stall occurs (the right-hand timeline of Figure 11).
//  * Disabling delayed ACKs (the paper's registry-key experiment) makes
//    the Windows client ACK everything immediately: the stalls vanish and
//    grep elapsed time improves by roughly 20%.
//
// Reads/stats of data the client has not cached cost a server round trip
// (>= 168us -> bucket 18+); cached operations stay local (buckets < 18),
// reproducing Figure 10's local/remote boundary.

#ifndef OSPROF_SRC_NET_CIFS_H_
#define OSPROF_SRC_NET_CIFS_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/fs/vfs.h"
#include "src/net/net.h"
#include "src/profilers/sim_profiler.h"
#include "src/sim/race_tracker.h"

namespace osnet {

using osprofilers::SimProfiler;

enum class ClientOs { kWindows, kLinux };

struct CifsConfig {
  NetConfig net;
  ClientOs client_os = ClientOs::kWindows;
  bool client_delayed_ack = true;  // The registry switch.
  int entries_per_batch = 40;
  // How many batches a Windows-client Find transaction pushes.
  int batches_per_transaction = 2;
  std::uint32_t bytes_per_entry = 100;
  std::uint32_t request_bytes = 200;
  std::uint32_t small_reply_bytes = 128;
  osim::Cycles client_op_cpu = 1'200;
  osim::Cycles server_op_cpu = 4'000;
};

class CifsMount : public osfs::Vfs {
 public:
  // `server_fs` is the file system exported by the server (typically an
  // Ext2SimFs with its own disk, in the same simulated world).
  CifsMount(osim::Kernel* kernel, osfs::Vfs* server_fs, CifsConfig config);

  // --- Vfs ----------------------------------------------------------------
  Task<int> Open(const std::string& path, bool direct_io) override;
  Task<void> Close(int fd) override;
  Task<std::int64_t> Read(int fd, std::uint64_t bytes) override;
  Task<std::int64_t> Write(int fd, std::uint64_t bytes) override;
  Task<std::uint64_t> Llseek(int fd, std::uint64_t pos) override;
  Task<osfs::DirentBatch> Readdir(int fd) override;
  Task<void> Fsync(int fd) override;
  Task<int> Create(const std::string& path) override;
  Task<void> Unlink(const std::string& path) override;
  Task<osfs::FileAttr> Stat(const std::string& path) override;

  // Records FindFirst / FindNext / remote-read latencies (the client-side
  // profile of Figure 10) under ops "findfirst", "findnext", "read",
  // "stat", ...  Probe handles for all ops are resolved here, once.
  void SetProfiler(SimProfiler* profiler);

  PacketTrace& trace() { return trace_; }
  DelayedAckPolicy& client_ack_policy() { return *client_ack_; }

  std::uint64_t server_requests() const {
    return OSIM_SHARED_RO(server_requests_);
  }
  // How often the server's synchronous push actually stalled on ACKs.
  std::uint64_t delayed_ack_stalls() const {
    return server_ledger_.blocked_waits();
  }

 private:
  struct RemoteAttr {
    std::uint64_t size = 0;
    bool is_dir = false;
  };

  struct DirState {
    std::vector<std::string> names;  // Fetched so far.
    std::size_t served = 0;          // Entries already returned to caller.
    std::uint64_t cookie = 0;        // Server-side resume position.
    bool end_of_dir = false;
    bool started = false;
  };

  struct ClientFile {
    std::string path;
    std::uint64_t pos = 0;
    RemoteAttr attr;
    std::unique_ptr<DirState> dir;
    bool in_use = false;
  };

  // The state of one in-flight Find transaction.
  struct FindTransaction {
    std::vector<std::string> names;
    std::vector<RemoteAttr> attrs;  // Parallel to names (SMB Find replies
                                    // carry each entry's metadata).
    std::uint64_t next_cookie = 0;
    bool end_of_dir = false;
    bool complete = false;
    std::unique_ptr<osim::WaitQueue> done;
  };

  // --- Client-side helpers -------------------------------------------------
  ClientFile& file(int fd);
  int AllocFd();
  Task<void> FetchAttr(const std::string& path);  // Network stat if uncached.

  // Runs one Find transaction (FindFirst when cookie == 0).  Latency of
  // the whole transaction is the profiled FindFirst/FindNext time.
  Task<void> FindTransactionOp(const std::string& path, DirState* dir);

  // Remote page read: one request, segmented reply.
  Task<void> RemoteReadPage(const std::string& path, std::uint64_t page);

  // Small request/small reply round trips (stat, create, unlink, fsync,
  // write-through).  Returns after the reply arrives.
  enum class SmallOp { kStat, kWrite, kCreate, kUnlink, kFlush };
  struct SmallOpArgs {
    SmallOp op = SmallOp::kStat;
    std::string path;
    std::uint64_t pos = 0;
    std::uint64_t bytes = 0;
  };
  Task<void> SmallRoundTrip(SmallOpArgs args);
  static std::string SmallOpLabel(SmallOp op);

  // Sends a request packet (piggybacking any pending ACK) and runs
  // `on_server` at arrival.
  void SendRequest(const std::string& label, std::function<void()> on_server);

  // --- Server side ---------------------------------------------------------
  struct ServerListing {
    std::vector<std::string> names;
    std::vector<RemoteAttr> attrs;  // Parallel to names.
    bool loaded = false;
  };
  Task<void> ServerEnsureListing(const std::string& path);
  Task<void> ServerFindHandler(std::string path, DirState* dir,
                               FindTransaction* txn);
  Task<void> ServerReadPageHandler(std::string path, std::uint64_t page,
                                   FindTransaction* txn);
  Task<void> ServerSmallOpHandler(SmallOpArgs args, FindTransaction* txn);

  // Sends one Find batch as an MSS burst; marks `txn` complete on the
  // final segment of the final burst.
  void SendBatchBurst(const std::string& label, std::uint32_t bytes,
                      bool final_burst, FindTransaction* txn);

  osim::Kernel* kernel_;
  osfs::Vfs* server_fs_;
  CifsConfig config_;
  PacketTrace trace_;
  NetPipe c2s_;
  NetPipe s2c_;
  AckLedger server_ledger_;
  std::unique_ptr<DelayedAckPolicy> client_ack_;
  SimProfiler* profiler_ = nullptr;
  // Probe handles into profiler_'s table, resolved by SetProfiler().
  struct Probes {
    osprof::ProbeHandle findfirst, findnext, open, close, read, write,
        llseek, readdir, fsync, create, unlink, stat;
  };
  Probes probes_;

  // Single-turn-atomic fd allocator: not a Shared cell (see race_tracker.h).
  std::deque<ClientFile> fds_;
  // Client- and server-side caches whose fill protocols span network
  // round trips; the request/reply token chain provides their
  // happens-before cover, so unsynchronized access is a real race.
  osim::Shared<std::map<std::string, RemoteAttr>> attr_cache_;
  osim::Shared<std::set<std::pair<std::string, std::uint64_t>>> page_cache_;
  osim::Shared<std::map<std::string, ServerListing>> server_listings_;
  osim::Shared<std::uint64_t> server_requests_;
};

}  // namespace osnet

#endif  // OSPROF_SRC_NET_CIFS_H_
