// An NFSv3-style network file system over the same link model
// (paper Figure 2: the NFS / NFSD path beside CIFS).
//
// NFS contrasts with CIFS in exactly the ways a latency profile exposes:
//
//  * Stateless request/reply RPCs -- every reply is a single burst the
//    client immediately consumes, and the next RPC carries the ACK, so
//    the delayed-ACK pathology of the Windows CIFS client cannot occur
//    regardless of server behaviour.
//  * LOOKUP walks one path component per RPC: opening "/a/b/c/f" costs
//    four round trips when the dentry cache is cold -- a characteristic
//    "lookup storm" mode at N x RTT that batched SMB opens do not have.
//  * READDIR returns one page of entries per RPC (no server push).
//  * Attribute caching with a timeout (ac-timeo): GETATTR results are
//    reused for a window, after which a revalidation RPC appears as a
//    separate latency mode.
//
// The server executes against a real exported Vfs (typically Ext2SimFs),
// so cold directories and files pay genuine disk latencies.

#ifndef OSPROF_SRC_NET_NFS_H_
#define OSPROF_SRC_NET_NFS_H_

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/fs/vfs.h"
#include "src/net/net.h"
#include "src/profilers/sim_profiler.h"

namespace osnet {

struct NfsConfig {
  NetConfig net;
  // Attribute-cache lifetime (Linux default acregmin = 3s).
  osim::Cycles attr_cache_timeout = static_cast<osim::Cycles>(3.0 * 1.7e9);
  // Dentry (name-lookup) cache lifetime.
  osim::Cycles dentry_cache_timeout = static_cast<osim::Cycles>(30.0 * 1.7e9);
  int entries_per_readdir = 64;
  std::uint32_t bytes_per_entry = 60;
  std::uint32_t request_bytes = 160;
  std::uint32_t small_reply_bytes = 112;
  osim::Cycles client_op_cpu = 1'000;
  osim::Cycles server_op_cpu = 3'500;
};

class NfsMount : public osfs::Vfs {
 public:
  NfsMount(osim::Kernel* kernel, osfs::Vfs* server_fs, NfsConfig config);

  // --- Vfs ----------------------------------------------------------------
  Task<int> Open(const std::string& path, bool direct_io) override;
  Task<void> Close(int fd) override;
  Task<std::int64_t> Read(int fd, std::uint64_t bytes) override;
  Task<std::int64_t> Write(int fd, std::uint64_t bytes) override;
  Task<std::uint64_t> Llseek(int fd, std::uint64_t pos) override;
  Task<osfs::DirentBatch> Readdir(int fd) override;
  Task<void> Fsync(int fd) override;
  Task<int> Create(const std::string& path) override;
  Task<void> Unlink(const std::string& path) override;
  Task<osfs::FileAttr> Stat(const std::string& path) override;

  // Records per-RPC latencies ("lookup", "getattr", "nfs_read", ...) and
  // the Vfs-level operations, like the paper's client-side profiles.
  // Probe handles for every RPC and Vfs op are resolved here, once.
  void SetProfiler(osprofilers::SimProfiler* profiler);

  PacketTrace& trace() { return trace_; }
  std::uint64_t rpcs_sent() const { return rpcs_; }
  std::uint64_t lookup_rpcs() const { return lookups_; }
  std::uint64_t attr_cache_hits() const { return attr_hits_; }

 private:
  struct CachedAttr {
    osfs::FileAttr attr;
    osim::Cycles fetched_at = 0;
  };
  struct ClientFile {
    std::string path;
    std::uint64_t pos = 0;
    osfs::FileAttr attr;
    std::vector<std::string> dir_names;  // Fetched entries.
    std::size_t dir_served = 0;
    std::uint64_t dir_cookie = 0;
    bool dir_eof = false;
    bool in_use = false;
  };
  // One in-flight RPC: the client blocks until `complete`.
  struct Rpc {
    bool complete = false;
    std::unique_ptr<osim::WaitQueue> done;
    // Reply payload (filled by the server handler before the reply lands).
    osfs::FileAttr attr;
    std::vector<std::string> names;
    std::uint64_t cookie = 0;
    bool eof = false;
    std::int64_t result = 0;
  };

  ClientFile& file(int fd);
  int AllocFd();

  // Issues one RPC: request packet, server handler, single reply burst.
  // The request consumes any pending ACK state implicitly (every reply is
  // acked by the next request -- standard RPC behaviour), so no delayed
  // ACKs ever fire.  `probe` is the pre-resolved latency probe; `op` is
  // still needed for the packet-trace and thread labels.
  Task<void> Call(osprof::ProbeHandle probe, const std::string& op,
                  std::uint32_t reply_bytes, Task<void> server_work, Rpc* rpc);

  // Path walk: one LOOKUP RPC per uncached component; fills attr_cache_.
  Task<void> WalkPath(const std::string& path);

  // Server-side handlers (each runs as a spawned kernel thread).
  Task<void> ServerGetattr(std::string path, Rpc* rpc);
  Task<void> ServerReaddir(std::string path, std::uint64_t cookie, Rpc* rpc);
  Task<void> ServerRead(std::string path, std::uint64_t offset,
                        std::uint64_t bytes, Rpc* rpc);
  Task<void> ServerWrite(std::string path, std::uint64_t offset,
                         std::uint64_t bytes, Rpc* rpc);
  Task<void> ServerCreate(std::string path, Rpc* rpc);
  Task<void> ServerUnlink(std::string path, Rpc* rpc);
  Task<void> ServerCommit(std::string path, Rpc* rpc);

  bool AttrFresh(const std::string& path) const;

  osim::Kernel* kernel_;
  osfs::Vfs* server_fs_;
  NfsConfig config_;
  PacketTrace trace_;
  NetPipe c2s_;
  NetPipe s2c_;
  osprofilers::SimProfiler* profiler_ = nullptr;
  // Probe handles into profiler_'s table, resolved by SetProfiler():
  // RPC-level ops first, then the Vfs-level ones.
  struct Probes {
    osprof::ProbeHandle lookup, getattr, nfs_read, nfs_write, nfs_readdir,
        commit, nfs_create, nfs_remove;
    osprof::ProbeHandle open, close, read, write, llseek, readdir, fsync,
        create, unlink, stat;
  };
  Probes probes_;

  std::deque<ClientFile> fds_;
  std::map<std::string, CachedAttr> attr_cache_;
  std::map<std::string, osim::Cycles> dentry_cache_;  // path -> cached at.
  std::set<std::pair<std::string, std::uint64_t>> page_cache_;
  std::uint64_t rpcs_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t attr_hits_ = 0;
};

}  // namespace osnet

#endif  // OSPROF_SRC_NET_NFS_H_
