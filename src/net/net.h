// The network model: serialized pipes, delayed ACKs, packet traces.
//
// Figure 10/11 are pure protocol-timing artifacts, so the model captures
// exactly the mechanics that produce them:
//
//  * NetPipe -- one direction of a 100 Mbps link: packets serialize at the
//    link rate (a 1460-byte segment takes ~117us) and arrive one-way-
//    latency later (56us; the paper measures a 112us RTT).
//  * DelayedAckPolicy -- the receiver-side TCP ACK rules: an ACK is sent
//    immediately for every second outstanding segment, otherwise it is
//    delayed up to 200ms in the hope of piggybacking on outgoing data.
//    Sending a request cancels the pending delayed ACK (the Linux client's
//    behaviour in Figure 11); a registry-style switch disables delaying
//    altogether (the paper's 20%-improvement experiment).
//  * AckLedger -- the sender-side view: how many data segments are unacked.
//    The Windows server refuses to push more data until everything sent so
//    far is acknowledged; that synchronous gate times the 200ms stalls.
//  * PacketTrace -- every packet with send/receive times and a label, so
//    the Figure 11 timelines can be printed directly.

#ifndef OSPROF_SRC_NET_NET_H_
#define OSPROF_SRC_NET_NET_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/kernel.h"
#include "src/sim/race_tracker.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"

namespace osnet {

using osim::Cycles;
using osim::Kernel;
using osim::Task;

struct NetConfig {
  // One-way propagation: 56us at 1.7 GHz (112us RTT, paper §3.1).
  Cycles one_way_latency = 95'200;
  // 100 Mbps in bytes per cycle at 1.7 GHz.
  double bytes_per_cycle = 12.5e6 / 1.7e9;
  std::uint32_t mss_bytes = 1460;
  // The delayed-ACK timer: 200ms.
  Cycles delayed_ack_timeout = 340'000'000;
};

enum class PacketKind { kRequest, kData, kAck };

struct PacketRecord {
  Cycles sent_at = 0;
  Cycles received_at = 0;
  std::string from;
  std::string label;
  PacketKind kind = PacketKind::kData;
  std::uint32_t bytes = 0;
};

// Chronological (by receive time) record of a connection's packets.
class PacketTrace {
 public:
  void Record(PacketRecord record) { records_.push_back(std::move(record)); }
  const std::vector<PacketRecord>& records() const { return records_; }
  void Clear() { records_.clear(); }

  // Figure 11-style rendering: one line per packet with ms timestamps.
  std::string Render(double cpu_hz, Cycles origin = 0) const;

 private:
  std::vector<PacketRecord> records_;
};

// One direction of the link.  Packets serialize FIFO at the link rate and
// are delivered (via callback) one-way-latency after serialization ends.
class NetPipe {
 public:
  NetPipe(Kernel* kernel, const NetConfig& config, std::string from,
          PacketTrace* trace)
      : kernel_(kernel), config_(config), from_(std::move(from)), trace_(trace) {}

  // Sends `bytes` as one packet; `deliver` runs at arrival time.
  void Send(std::uint32_t bytes, PacketKind kind, const std::string& label,
            std::function<void()> deliver);

  // Splits `bytes` into MSS-sized segments; `on_segment(i, n)` runs as
  // each arrives.  Returns the number of segments.
  int SendSegmented(std::uint32_t bytes, const std::string& label,
                    std::function<void(int index, int total)> on_segment);

  std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  Kernel* kernel_;
  NetConfig config_;
  std::string from_;
  PacketTrace* trace_;
  Cycles busy_until_ = 0;
  std::uint64_t packets_sent_ = 0;
};

// Sender-side unacked-segment accounting with an awaitable "all acked"
// barrier (the Windows server's synchronous push gate).  ACKs are
// cumulative: each carries the receiver's total received-segment count.
class AckLedger {
 public:
  explicit AckLedger(Kernel* kernel)
      : counts_(*kernel, "net.ack_ledger"), waiters_(kernel, osprof::kLayerNet) {}

  void OnSegmentSent() { ++OSIM_SHARED_RW(counts_).sent; }

  // A cumulative ACK covering the first `upto` segments arrived.
  void OnAckReceived(std::uint64_t upto) {
    AckCounts& counts = OSIM_SHARED_RW(counts_);
    if (upto > counts.acked) {
      counts.acked = upto;
      waiters_.WakeAll();
    }
  }

  bool AllAcked() const {
    const AckCounts& counts = OSIM_SHARED_RO(counts_);
    return counts.acked >= counts.sent;
  }
  std::uint64_t sent() const { return OSIM_SHARED_RO(counts_).sent; }
  std::uint64_t acked() const { return OSIM_SHARED_RO(counts_).acked; }
  // How many WaitAllAcked calls actually had to block: the count of
  // synchronous-push stalls.
  std::uint64_t blocked_waits() const {
    return OSIM_SHARED_RO(counts_).blocked_waits;
  }

  Task<void> WaitAllAcked() {
    if (!AllAcked()) {
      ++OSIM_SHARED_RW(counts_).blocked_waits;
    }
    while (!AllAcked()) {
      co_await waiters_.Wait();
    }
  }

 private:
  // Sent/acked counters mutate from both the sender task and ACK-delivery
  // callbacks while the server blocks in WaitAllAcked, so they live in one
  // race-checked cell (the callbacks run kernel-context and adopt the
  // sender's token, keeping the protocol ordered).
  struct AckCounts {
    std::uint64_t sent = 0;
    std::uint64_t acked = 0;
    std::uint64_t blocked_waits = 0;
  };
  osim::Shared<AckCounts> counts_;
  osim::WaitQueue waiters_;
};

// Receiver-side delayed-ACK policy.
class DelayedAckPolicy {
 public:
  DelayedAckPolicy(Kernel* kernel, const NetConfig& config, NetPipe* ack_pipe,
                   AckLedger* peer_ledger)
      : kernel_(kernel),
        config_(config),
        ack_pipe_(ack_pipe),
        peer_ledger_(peer_ledger) {}

  // The registry switch: when disabled, every segment is ACKed at once.
  void set_delayed_ack_enabled(bool enabled) { delayed_enabled_ = enabled; }
  bool delayed_ack_enabled() const { return delayed_enabled_; }

  // Call for every received data segment.
  void OnDataSegment();

  // Call when the receiver transmits a request of its own: the ACK
  // piggybacks on that packet, so the pending delayed ACK is cancelled
  // locally.  Returns the cumulative received count the piggybacked ACK
  // covers, or 0 if no ACK was pending -- the caller must invoke the peer
  // ledger's OnAckReceived(upto) when the packet *arrives* (the ACK
  // travels with the data, not instantly).
  std::uint64_t ConsumePendingAck();

  std::uint64_t immediate_acks() const { return immediate_acks_; }
  std::uint64_t delayed_acks_fired() const { return delayed_acks_fired_; }
  std::uint64_t piggybacked_acks() const { return piggybacked_acks_; }

 private:
  void SendAckNow(const std::string& label);

  Kernel* kernel_;
  NetConfig config_;
  NetPipe* ack_pipe_;
  AckLedger* peer_ledger_;
  bool delayed_enabled_ = true;
  int unacked_ = 0;
  std::uint64_t received_total_ = 0;
  std::uint64_t timer_generation_ = 0;
  bool timer_armed_ = false;
  std::uint64_t immediate_acks_ = 0;
  std::uint64_t delayed_acks_fired_ = 0;
  std::uint64_t piggybacked_acks_ = 0;
};

}  // namespace osnet

#endif  // OSPROF_SRC_NET_NET_H_
