#include "src/net/net.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace osnet {

std::string PacketTrace::Render(double cpu_hz, Cycles origin) const {
  std::ostringstream os;
  for (const PacketRecord& r : records_) {
    const double ms =
        static_cast<double>(r.received_at - origin) / cpu_hz * 1e3;
    char time_buf[32];
    std::snprintf(time_buf, sizeof(time_buf), "%8.1fms", ms);
    const char* kind = r.kind == PacketKind::kRequest ? "REQ "
                       : r.kind == PacketKind::kData  ? "DATA"
                                                      : "ACK ";
    os << time_buf << "  " << kind << "  " << r.from << "  " << r.label
       << " (" << r.bytes << "B)\n";
  }
  return os.str();
}

void NetPipe::Send(std::uint32_t bytes, PacketKind kind,
                   const std::string& label, std::function<void()> deliver) {
  const Cycles now = kernel_->now();
  const Cycles start = std::max(now, busy_until_);
  const auto serialization = static_cast<Cycles>(
      std::max(1.0, static_cast<double>(bytes) / config_.bytes_per_cycle));
  busy_until_ = start + serialization;
  const Cycles arrive = busy_until_ + config_.one_way_latency;
  ++packets_sent_;
  PacketRecord record;
  record.sent_at = now;
  record.received_at = arrive;
  record.from = from_;
  record.label = label;
  record.kind = kind;
  record.bytes = bytes;
  Kernel* k = kernel_;
  PacketTrace* trace = trace_;
  if (k->races().enabled()) {
    // Race-tracking path: the sender's happens-before history travels
    // with the packet and is adopted around delivery, so handlers the
    // delivery spawns (smbd) or tasks it wakes inherit it.  A separate
    // path so the common closure never carries the token.
    k->events().At(arrive, [k, record = std::move(record), trace,
                            deliver = std::move(deliver),
                            token = k->races().Capture()]() mutable {
      if (trace != nullptr) {
        trace->Record(std::move(record));
      }
      k->races().Adopt(token);
      if (deliver) {
        deliver();
      }
      k->races().Drop();
    });
    return;
  }
  k->events().At(arrive, [record = std::move(record), trace,
                          deliver = std::move(deliver)]() mutable {
    if (trace != nullptr) {
      trace->Record(std::move(record));
    }
    if (deliver) {
      deliver();
    }
  });
}

int NetPipe::SendSegmented(std::uint32_t bytes, const std::string& label,
                           std::function<void(int, int)> on_segment) {
  const int total = static_cast<int>(
      std::max<std::uint32_t>(1, (bytes + config_.mss_bytes - 1) / config_.mss_bytes));
  std::uint32_t remaining = bytes;
  for (int i = 0; i < total; ++i) {
    const std::uint32_t chunk = std::min(remaining, config_.mss_bytes);
    remaining -= chunk;
    std::string seg_label = label;
    if (total > 1) {
      seg_label += i == 0 ? " reply" : " reply continuation " + std::to_string(i);
    }
    Send(chunk, PacketKind::kData, seg_label,
         [on_segment, i, total] { on_segment(i, total); });
  }
  return total;
}

void DelayedAckPolicy::SendAckNow(const std::string& label) {
  unacked_ = 0;
  ++timer_generation_;  // Invalidate any pending timer.
  timer_armed_ = false;
  AckLedger* ledger = peer_ledger_;
  const std::uint64_t upto = received_total_;
  ack_pipe_->Send(64, PacketKind::kAck, label,
                  [ledger, upto] { ledger->OnAckReceived(upto); });
}

void DelayedAckPolicy::OnDataSegment() {
  ++received_total_;
  if (!delayed_enabled_) {
    ++immediate_acks_;
    SendAckNow("ACK (immediate)");
    return;
  }
  ++unacked_;
  if (unacked_ >= 2) {
    // Every second segment is acknowledged at once (RFC 1122 behaviour).
    ++immediate_acks_;
    SendAckNow("ACK of continuation");
    return;
  }
  if (!timer_armed_) {
    timer_armed_ = true;
    const std::uint64_t generation = ++timer_generation_;
    kernel_->events().After(config_.delayed_ack_timeout, [this, generation] {
      if (generation != timer_generation_ || !timer_armed_) {
        return;  // Cancelled: an ACK went out some other way.
      }
      ++delayed_acks_fired_;
      SendAckNow("ACK (delayed 200ms)");
    });
  }
}

std::uint64_t DelayedAckPolicy::ConsumePendingAck() {
  if (unacked_ > 0 || timer_armed_) {
    ++piggybacked_acks_;
    unacked_ = 0;
    ++timer_generation_;
    timer_armed_ = false;
    return received_total_;
  }
  return 0;
}

}  // namespace osnet
