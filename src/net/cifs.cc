#include "src/net/cifs.h"

#include <algorithm>
#include <stdexcept>

#include "src/fs/page_cache.h"

namespace osnet {

CifsMount::CifsMount(osim::Kernel* kernel, osfs::Vfs* server_fs,
                     CifsConfig config)
    : kernel_(kernel),
      server_fs_(server_fs),
      config_(config),
      c2s_(kernel, config.net, "client", &trace_),
      s2c_(kernel, config.net, "server", &trace_),
      server_ledger_(kernel),
      attr_cache_(*kernel, "cifs.attr_cache"),
      page_cache_(*kernel, "cifs.page_cache"),
      server_listings_(*kernel, "cifs.server_listings"),
      server_requests_(*kernel, "cifs.server_requests") {
  client_ack_ = std::make_unique<DelayedAckPolicy>(kernel, config.net, &c2s_,
                                                   &server_ledger_);
  client_ack_->set_delayed_ack_enabled(config.client_delayed_ack);
}

void CifsMount::SetProfiler(SimProfiler* profiler) {
  profiler_ = profiler;
  if (profiler_ == nullptr) {
    return;
  }
  probes_.findfirst = profiler_->Resolve("findfirst");
  probes_.findnext = profiler_->Resolve("findnext");
  probes_.open = profiler_->Resolve("open");
  probes_.close = profiler_->Resolve("close");
  probes_.read = profiler_->Resolve("read");
  probes_.write = profiler_->Resolve("write");
  probes_.llseek = profiler_->Resolve("llseek");
  probes_.readdir = profiler_->Resolve("readdir");
  probes_.fsync = profiler_->Resolve("fsync");
  probes_.create = profiler_->Resolve("create");
  probes_.unlink = profiler_->Resolve("unlink");
  probes_.stat = profiler_->Resolve("stat");
}

CifsMount::ClientFile& CifsMount::file(int fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= fds_.size() ||
      !fds_[static_cast<std::size_t>(fd)].in_use) {
    throw std::invalid_argument("CifsMount: bad file descriptor");
  }
  return fds_[static_cast<std::size_t>(fd)];
}

int CifsMount::AllocFd() {
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    if (!fds_[i].in_use) {
      fds_[i] = ClientFile{};
      fds_[i].in_use = true;
      return static_cast<int>(i);
    }
  }
  fds_.emplace_back();
  fds_.back().in_use = true;
  return static_cast<int>(fds_.size() - 1);
}

void CifsMount::SendRequest(const std::string& label,
                            std::function<void()> on_server) {
  // A request packet carries any pending ACK (the Linux-client mechanism
  // that avoids the delayed-ACK stall).
  const std::uint64_t piggyback = client_ack_->ConsumePendingAck();
  AckLedger* ledger = &server_ledger_;
  c2s_.Send(config_.request_bytes, PacketKind::kRequest, label,
            [piggyback, ledger, on_server = std::move(on_server)] {
              if (piggyback > 0) {
                ledger->OnAckReceived(piggyback);
              }
              on_server();
            });
}

// --- Server-side helpers ----------------------------------------------------

Task<void> CifsMount::ServerEnsureListing(const std::string& path) {
  ServerListing& listing = OSIM_SHARED_RW(server_listings_)[path];
  if (listing.loaded) {
    co_return;
  }
  // Enumerate on the exported file system -- real substrate work: the
  // first FindFirst of a cold directory pays the server's disk latency.
  const int fd = co_await server_fs_->Open(path, /*direct_io=*/false);
  if (fd >= 0) {
    while (true) {
      const osfs::DirentBatch batch = co_await server_fs_->Readdir(fd);
      if (batch.names.empty()) {
        break;
      }
      for (const std::string& name : batch.names) {
        // SMB Find replies carry per-entry metadata, so the server stats
        // each entry while building the listing.
        const osfs::FileAttr attr =
            co_await server_fs_->Stat(path + "/" + name);
        auto& listings = OSIM_SHARED_RW(server_listings_);
        listings[path].names.push_back(name);
        listings[path].attrs.push_back(RemoteAttr{attr.size, attr.is_dir});
      }
    }
    co_await server_fs_->Close(fd);
  }
  // ServerEnsureListing may have suspended; re-resolve (map iterators are
  // stable, but be explicit about the single mutation point).
  OSIM_SHARED_RW(server_listings_)[path].loaded = true;
}

void CifsMount::SendBatchBurst(const std::string& label, std::uint32_t bytes,
                               bool final_burst, FindTransaction* txn) {
  DelayedAckPolicy* ack = client_ack_.get();
  const int segments = s2c_.SendSegmented(
      bytes, label, [ack, final_burst, txn](int index, int total) {
        ack->OnDataSegment();
        if (final_burst && index == total - 1) {
          txn->complete = true;
          txn->done->WakeAll();
        }
      });
  for (int i = 0; i < segments; ++i) {
    server_ledger_.OnSegmentSent();
  }
}

Task<void> CifsMount::ServerFindHandler(std::string path, DirState* dir,
                                        FindTransaction* txn) {
  ++OSIM_SHARED_RW(server_requests_);
  const bool first = !dir->started;
  co_await kernel_->Cpu(config_.server_op_cpu);
  co_await ServerEnsureListing(path);
  const ServerListing& listing = OSIM_SHARED_RO(server_listings_).at(path);

  std::uint64_t cookie = dir->cookie;
  const std::uint64_t total = listing.names.size();
  // A Windows client lets the server push several batches per
  // transaction; a Linux client pulls one batch per request.
  const int max_batches = config_.client_os == ClientOs::kWindows
                              ? config_.batches_per_transaction
                              : 1;
  for (int b = 0; b < max_batches; ++b) {
    if (b > 0) {
      // The Windows server's synchronous behaviour: no further data until
      // everything sent so far is acknowledged (Figure 11, left).
      co_await server_ledger_.WaitAllAcked();
    }
    const std::uint64_t take = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(config_.entries_per_batch), total - cookie);
    for (std::uint64_t i = 0; i < take; ++i) {
      txn->names.push_back(listing.names[cookie + i]);
      txn->attrs.push_back(listing.attrs[cookie + i]);
    }
    cookie += take;
    const bool exhausted = cookie >= total;
    const bool final_burst = b == max_batches - 1 || exhausted;
    const std::uint32_t bytes = std::max<std::uint32_t>(
        config_.small_reply_bytes,
        static_cast<std::uint32_t>(take) * config_.bytes_per_entry);
    const std::string label =
        b == 0 ? (first ? "FIND_FIRST" : "FIND_NEXT") : "transact continuation";
    SendBatchBurst(label, bytes, final_burst, txn);
    if (exhausted) {
      break;
    }
  }
  txn->next_cookie = cookie;
  txn->end_of_dir = cookie >= total;
}

Task<void> CifsMount::ServerReadPageHandler(std::string path,
                                            std::uint64_t page,
                                            FindTransaction* txn) {
  ++OSIM_SHARED_RW(server_requests_);
  co_await kernel_->Cpu(config_.server_op_cpu);
  // Real server-side read: open + seek + read on the exported fs (the
  // server's own page cache and disk produce the service-time spread).
  const int fd = co_await server_fs_->Open(path, /*direct_io=*/false);
  std::uint32_t bytes = config_.small_reply_bytes;
  if (fd >= 0) {
    (void)co_await server_fs_->Llseek(fd, page * osfs::kPageBytes);
    const std::int64_t got = co_await server_fs_->Read(fd, osfs::kPageBytes);
    if (got > 0) {
      bytes = static_cast<std::uint32_t>(got);
    }
    co_await server_fs_->Close(fd);
  }
  SendBatchBurst("READ", bytes, /*final_burst=*/true, txn);
}

// --- Client-side transactions ------------------------------------------------

Task<void> CifsMount::FindTransactionOp(const std::string& path,
                                        DirState* dir) {
  const bool first = !dir->started;
  const osprof::ProbeHandle probe =
      first ? probes_.findfirst : probes_.findnext;
  if (profiler_ != nullptr) {
    profiler_->BeginSpan(probe);
  }
  const Cycles start = kernel_->ReadTsc();
  co_await kernel_->Cpu(config_.client_op_cpu);
  FindTransaction txn;
  txn.done = std::make_unique<osim::WaitQueue>(kernel_, osprof::kLayerNet);
  FindTransaction* txn_ptr = &txn;
  SendRequest(first ? "FIND_FIRST request" : "FIND_NEXT request",
              [this, path, dir, txn_ptr] {
                kernel_->Spawn("smbd:find",
                               ServerFindHandler(path, dir, txn_ptr));
              });
  while (!txn.complete) {
    co_await txn.done->Wait();
  }
  dir->started = true;
  for (std::size_t i = 0; i < txn.names.size(); ++i) {
    // Cache the metadata that rode along with each entry, so subsequent
    // stat/open of listed files stays client-local.
    OSIM_SHARED_RW(attr_cache_)[path + "/" + txn.names[i]] = txn.attrs[i];
    dir->names.push_back(std::move(txn.names[i]));
  }
  dir->cookie = txn.next_cookie;
  dir->end_of_dir = txn.end_of_dir;
  if (profiler_ != nullptr) {
    profiler_->EndSpan(probe, kernel_->ReadTsc() - start);
  }
}

Task<void> CifsMount::RemoteReadPage(const std::string& path,
                                     std::uint64_t page) {
  FindTransaction txn;
  txn.done = std::make_unique<osim::WaitQueue>(kernel_, osprof::kLayerNet);
  FindTransaction* txn_ptr = &txn;
  SendRequest("READ request", [this, path, page, txn_ptr] {
    kernel_->Spawn("smbd:read", ServerReadPageHandler(path, page, txn_ptr));
  });
  while (!txn.complete) {
    co_await txn.done->Wait();
  }
  OSIM_SHARED_RW(page_cache_).insert({path, page});
}

std::string CifsMount::SmallOpLabel(SmallOp op) {
  switch (op) {
    case SmallOp::kStat:
      return "STAT";
    case SmallOp::kWrite:
      return "WRITE";
    case SmallOp::kCreate:
      return "CREATE";
    case SmallOp::kUnlink:
      return "UNLINK";
    case SmallOp::kFlush:
      return "FLUSH";
  }
  return "?";
}

Task<void> CifsMount::ServerSmallOpHandler(SmallOpArgs args,
                                           FindTransaction* txn) {
  ++OSIM_SHARED_RW(server_requests_);
  co_await kernel_->Cpu(config_.server_op_cpu);
  switch (args.op) {
    case SmallOp::kStat: {
      const osfs::FileAttr attr = co_await server_fs_->Stat(args.path);
      OSIM_SHARED_RW(attr_cache_)[args.path] = RemoteAttr{attr.size, attr.is_dir};
      break;
    }
    case SmallOp::kWrite: {
      const int sfd = co_await server_fs_->Open(args.path, false);
      if (sfd >= 0) {
        (void)co_await server_fs_->Llseek(sfd, args.pos);
        (void)co_await server_fs_->Write(sfd, args.bytes);
        co_await server_fs_->Close(sfd);
      }
      break;
    }
    case SmallOp::kCreate: {
      const int sfd = co_await server_fs_->Create(args.path);
      if (sfd >= 0) {
        co_await server_fs_->Close(sfd);
      }
      break;
    }
    case SmallOp::kUnlink: {
      co_await server_fs_->Unlink(args.path);
      break;
    }
    case SmallOp::kFlush: {
      const int sfd = co_await server_fs_->Open(args.path, false);
      if (sfd >= 0) {
        co_await server_fs_->Fsync(sfd);
        co_await server_fs_->Close(sfd);
      }
      break;
    }
  }
  SendBatchBurst(SmallOpLabel(args.op) + " reply", config_.small_reply_bytes,
                 /*final_burst=*/true, txn);
}

Task<void> CifsMount::SmallRoundTrip(SmallOpArgs args) {
  FindTransaction txn;
  txn.done = std::make_unique<osim::WaitQueue>(kernel_, osprof::kLayerNet);
  FindTransaction* txn_ptr = &txn;
  const std::string label = SmallOpLabel(args.op);
  SendRequest(label + " request", [this, args = std::move(args), txn_ptr] {
    kernel_->Spawn("smbd:small", ServerSmallOpHandler(args, txn_ptr));
  });
  while (!txn.complete) {
    co_await txn.done->Wait();
  }
}

Task<void> CifsMount::FetchAttr(const std::string& path) {
  if (OSIM_SHARED_RO(attr_cache_).count(path) != 0) {
    co_return;
  }
  SmallOpArgs args;
  args.op = SmallOp::kStat;
  args.path = path;
  co_await SmallRoundTrip(std::move(args));
}

// --- Vfs operations -----------------------------------------------------------

Task<int> CifsMount::Open(const std::string& path, bool direct_io) {
  (void)direct_io;  // CIFS reads always go through the client cache here.
  if (profiler_ != nullptr) {
    profiler_->BeginSpan(probes_.open);
  }
  const Cycles start = kernel_->ReadTsc();
  co_await kernel_->Cpu(config_.client_op_cpu);
  co_await FetchAttr(path);
  const RemoteAttr attr = OSIM_SHARED_RO(attr_cache_).at(path);
  const int fd = AllocFd();
  ClientFile& f = file(fd);
  f.path = path;
  f.attr = attr;
  if (attr.is_dir) {
    f.dir = std::make_unique<DirState>();
  }
  if (profiler_ != nullptr) {
    profiler_->EndSpan(probes_.open, kernel_->ReadTsc() - start);
  }
  co_return fd;
}

Task<void> CifsMount::Close(int fd) {
  if (profiler_ != nullptr) {
    profiler_->BeginSpan(probes_.close);
  }
  const Cycles start = kernel_->ReadTsc();
  co_await kernel_->Cpu(config_.client_op_cpu / 2);
  file(fd).in_use = false;
  if (profiler_ != nullptr) {
    profiler_->EndSpan(probes_.close, kernel_->ReadTsc() - start);
  }
}

Task<std::int64_t> CifsMount::Read(int fd, std::uint64_t bytes) {
  if (profiler_ != nullptr) {
    profiler_->BeginSpan(probes_.read);
  }
  const Cycles start = kernel_->ReadTsc();
  ClientFile& f = file(fd);
  std::int64_t result = 0;
  if (f.attr.is_dir || bytes == 0 || f.pos >= f.attr.size) {
    co_await kernel_->Cpu(config_.client_op_cpu / 4);
  } else {
    const std::uint64_t end = std::min(f.attr.size, f.pos + bytes);
    const std::uint64_t first_page = f.pos / osfs::kPageBytes;
    const std::uint64_t last_page = (end - 1) / osfs::kPageBytes;
    for (std::uint64_t page = first_page; page <= last_page; ++page) {
      if (OSIM_SHARED_RO(page_cache_).count({f.path, page}) == 0) {
        co_await RemoteReadPage(f.path, page);
      }
      co_await kernel_->Cpu(1'400);  // Local copy-out.
    }
    result = static_cast<std::int64_t>(end - f.pos);
    f.pos = end;
  }
  if (profiler_ != nullptr) {
    profiler_->EndSpan(probes_.read, kernel_->ReadTsc() - start);
  }
  co_return result;
}

Task<std::int64_t> CifsMount::Write(int fd, std::uint64_t bytes) {
  if (profiler_ != nullptr) {
    profiler_->BeginSpan(probes_.write);
  }
  const Cycles start = kernel_->ReadTsc();
  ClientFile& f = file(fd);
  const std::string path = f.path;
  const std::uint64_t pos = f.pos;
  // Write-through: the bytes travel to the server, which applies them to
  // the exported fs.
  co_await kernel_->Cpu(config_.client_op_cpu);
  SmallOpArgs args;
  args.op = SmallOp::kWrite;
  args.path = path;
  args.pos = pos;
  args.bytes = bytes;
  co_await SmallRoundTrip(std::move(args));
  ClientFile& f2 = file(fd);
  f2.pos += bytes;
  f2.attr.size = std::max(f2.attr.size, f2.pos);
  OSIM_SHARED_RW(attr_cache_)[path] = f2.attr;
  if (profiler_ != nullptr) {
    profiler_->EndSpan(probes_.write, kernel_->ReadTsc() - start);
  }
  co_return static_cast<std::int64_t>(bytes);
}

Task<std::uint64_t> CifsMount::Llseek(int fd, std::uint64_t pos) {
  if (profiler_ != nullptr) {
    profiler_->BeginSpan(probes_.llseek);
  }
  const Cycles start = kernel_->ReadTsc();
  co_await kernel_->Cpu(config_.client_op_cpu / 4);
  ClientFile& f = file(fd);
  f.pos = pos;
  if (profiler_ != nullptr) {
    profiler_->EndSpan(probes_.llseek, kernel_->ReadTsc() - start);
  }
  co_return f.pos;
}

Task<osfs::DirentBatch> CifsMount::Readdir(int fd) {
  if (profiler_ != nullptr) {
    profiler_->BeginSpan(probes_.readdir);
  }
  const Cycles start = kernel_->ReadTsc();
  ClientFile& f = file(fd);
  osfs::DirentBatch batch;
  if (f.dir == nullptr) {
    batch.at_end = true;
    co_await kernel_->Cpu(config_.client_op_cpu / 4);
  } else {
    DirState& dir = *f.dir;
    // Fetch more entries if the caller has consumed what we have.
    while (dir.served >= dir.names.size() && !dir.end_of_dir) {
      co_await FindTransactionOp(f.path, &dir);
    }
    if (dir.served >= dir.names.size()) {
      // Past EOF: local, immediate.
      batch.at_end = true;
      co_await kernel_->Cpu(90);
    } else {
      const std::size_t take =
          std::min(static_cast<std::size_t>(config_.entries_per_batch),
                   dir.names.size() - dir.served);
      for (std::size_t i = 0; i < take; ++i) {
        batch.names.push_back(dir.names[dir.served + i]);
      }
      dir.served += take;
      batch.at_end = dir.served >= dir.names.size() && dir.end_of_dir;
      co_await kernel_->Cpu(500 + 55 * take);
    }
  }
  if (profiler_ != nullptr) {
    profiler_->EndSpan(probes_.readdir, kernel_->ReadTsc() - start);
  }
  co_return batch;
}

Task<void> CifsMount::Fsync(int fd) {
  if (profiler_ != nullptr) {
    profiler_->BeginSpan(probes_.fsync);
  }
  const Cycles start = kernel_->ReadTsc();
  const std::string path = file(fd).path;
  SmallOpArgs args;
  args.op = SmallOp::kFlush;
  args.path = path;
  co_await SmallRoundTrip(std::move(args));
  if (profiler_ != nullptr) {
    profiler_->EndSpan(probes_.fsync, kernel_->ReadTsc() - start);
  }
}

Task<int> CifsMount::Create(const std::string& path) {
  if (profiler_ != nullptr) {
    profiler_->BeginSpan(probes_.create);
  }
  const Cycles start = kernel_->ReadTsc();
  SmallOpArgs args;
  args.op = SmallOp::kCreate;
  args.path = path;
  co_await SmallRoundTrip(std::move(args));
  OSIM_SHARED_RW(attr_cache_)[path] = RemoteAttr{0, false};
  const int fd = AllocFd();
  ClientFile& f = file(fd);
  f.path = path;
  f.attr = OSIM_SHARED_RO(attr_cache_).at(path);
  if (profiler_ != nullptr) {
    profiler_->EndSpan(probes_.create, kernel_->ReadTsc() - start);
  }
  co_return fd;
}

Task<void> CifsMount::Unlink(const std::string& path) {
  if (profiler_ != nullptr) {
    profiler_->BeginSpan(probes_.unlink);
  }
  const Cycles start = kernel_->ReadTsc();
  SmallOpArgs args;
  args.op = SmallOp::kUnlink;
  args.path = path;
  co_await SmallRoundTrip(std::move(args));
  OSIM_SHARED_RW(attr_cache_).erase(path);
  if (profiler_ != nullptr) {
    profiler_->EndSpan(probes_.unlink, kernel_->ReadTsc() - start);
  }
}

Task<osfs::FileAttr> CifsMount::Stat(const std::string& path) {
  if (profiler_ != nullptr) {
    profiler_->BeginSpan(probes_.stat);
  }
  const Cycles start = kernel_->ReadTsc();
  co_await kernel_->Cpu(config_.client_op_cpu / 4);
  co_await FetchAttr(path);
  osfs::FileAttr attr;
  // FetchAttr guarantees presence; [] would record a write on a miss.
  const RemoteAttr& cached = OSIM_SHARED_RO(attr_cache_).at(path);
  attr.size = cached.size;
  attr.is_dir = cached.is_dir;
  if (profiler_ != nullptr) {
    profiler_->EndSpan(probes_.stat, kernel_->ReadTsc() - start);
  }
  co_return attr;
}

}  // namespace osnet
