// The cluster interconnect: one NIC endpoint per osim::Node.
//
// A Fabric gives every node of a multi-node Kernel (KernelConfig
// num_nodes > 1, src/sim/kernel.h) an egress NetPipe onto a shared
// switch, so cluster services -- the DLM in src/net/dlm.h is the first
// -- exchange messages with real wire cost: FIFO serialization at the
// sender's link rate plus one-way propagation, exactly the NetPipe model
// the CIFS/NFS stacks use.  Delivery callbacks run in kernel context at
// arrival time, and NetPipe::Send threads a SimRace causality token from
// the sender through to the delivery, so cross-node happens-before edges
// (a lock grant ordering a remote node's accesses) come for free.
//
// Same-node sends short-circuit: no wire, no latency, the deliver
// callback runs inline in the caller's context.  That keeps intra-node
// protocol traffic (client -> local DLM daemon) out of the net layer's
// attribution, which is the point -- only cycles genuinely spent on the
// interconnect may surface as kLayerNet.

#ifndef OSPROF_SRC_NET_FABRIC_H_
#define OSPROF_SRC_NET_FABRIC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/net/net.h"
#include "src/sim/kernel.h"

namespace osnet {

class Fabric {
 public:
  // One egress pipe per node of `kernel`'s topology.  `config` is the
  // per-link wire model (latency, rate); all links are symmetric.
  Fabric(osim::Kernel* kernel, const NetConfig& config = {})
      : kernel_(kernel) {
    for (int n = 0; n < kernel->num_nodes(); ++n) {
      egress_.push_back(std::make_unique<NetPipe>(
          kernel, config, "node" + std::to_string(n), nullptr));
    }
  }

  // Sends `bytes` from node `from` to node `to`; `deliver` runs at
  // arrival time (kernel context).  A same-node send delivers inline in
  // the caller's context with zero cost.
  void Send(int from, int to, std::uint32_t bytes, PacketKind kind,
            const std::string& label, std::function<void()> deliver) {
    if (from < 0 || from >= num_nodes() || to < 0 || to >= num_nodes()) {
      throw std::out_of_range("Fabric::Send: bad node id");
    }
    if (from == to) {
      ++local_deliveries_;
      deliver();
      return;
    }
    ++messages_sent_;
    bytes_sent_ += bytes;
    egress_[static_cast<std::size_t>(from)]->Send(bytes, kind, label,
                                                  std::move(deliver));
  }

  int num_nodes() const { return static_cast<int>(egress_.size()); }
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t local_deliveries() const { return local_deliveries_; }

 private:
  osim::Kernel* kernel_;
  std::vector<std::unique_ptr<NetPipe>> egress_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t local_deliveries_ = 0;
};

}  // namespace osnet

#endif  // OSPROF_SRC_NET_FABRIC_H_
